"""Programmatic reproduction validation — DESIGN.md section 7 as code.

``repro validate`` (or :func:`run_validation`) executes every success
criterion of the reproduction against freshly generated data and reports
pass/fail per criterion. This is the one-command answer to "does this
repository still reproduce the paper?" — and the checks double as the
contract the benchmark assertions enforce piecewise.

Criteria are grouped by experiment; each returns an observed value and the
band it must fall in, so the report is auditable rather than a bare boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analysis.report import render_table


@dataclass
class Criterion:
    """One checked claim."""

    experiment: str
    claim: str
    observed: str
    expected: str
    passed: bool


@dataclass
class ValidationReport:
    """Accumulated pass/fail criteria with a rendered verdict."""
    criteria: List[Criterion] = field(default_factory=list)

    def check(self, experiment: str, claim: str, observed, expected: str, passed: bool) -> None:
        """Append one checked criterion to the report."""
        self.criteria.append(Criterion(experiment, claim, str(observed), expected, passed))

    @property
    def passed(self) -> bool:
        """True when every criterion passed."""
        return all(c.passed for c in self.criteria)

    @property
    def failures(self) -> List[Criterion]:
        """The criteria that failed."""
        return [c for c in self.criteria if not c.passed]

    def render(self) -> str:
        """The report as an ASCII table with a final verdict line."""
        rows = [
            (c.experiment, c.claim, c.observed, c.expected, "PASS" if c.passed else "FAIL")
            for c in self.criteria
        ]
        verdict = "ALL CRITERIA PASS" if self.passed else (
            f"{len(self.failures)} CRITERIA FAILED"
        )
        table = render_table(
            ["experiment", "claim", "observed", "expected", "result"],
            rows,
            title="Reproduction validation (DESIGN.md section 7)",
        )
        return f"{table}\n\n=> {verdict}"


def _validate_table1(report: ValidationReport, quick: bool) -> None:
    from repro.decomp.bench import table1

    results = table1(trials=2 if quick else 5)
    counts_exact = all(
        (r.counts.receiving_threads, r.counts.sending_threads, r.counts.list_length)
        in {
            ((32, 32), "5pt"): [(124, 128, 128)],
            ((64, 32), "5pt"): [(188, 192, 192)],
            ((32, 32), "9pt"): [(124, 132, 380)],
            ((64, 32), "9pt"): [(188, 196, 572)],
            ((8, 8, 4), "7pt"): [(184, 256, 256)],
            ((1, 1, 128), "7pt"): [(128, 514, 514)],
            ((1, 1, 256), "7pt"): [(256, 1026, 1026)],
            ((8, 8, 4), "27pt"): [(184, 344, 2072)],
            ((1, 1, 128), "27pt"): [(128, 1042, 3074)],
            ((1, 1, 256), "27pt"): [(256, 2066, 6146)],
        }[(r.dims, r.stencil)]
        for r in results
    )
    report.check("Table 1", "tr/ts/length combinatorics", "exact" if counts_exact else "mismatch",
                 "exact match, all 10 rows", counts_exact)
    fracs = [r.mean_search_depth / r.counts.list_length for r in results]
    in_band = all(0.15 <= f <= 0.30 for f in fracs)
    report.check("Table 1", "depth/length band",
                 f"{min(fracs):.2f}..{max(fracs):.2f}", "0.15..0.30", in_band)


def _validate_fig1(report: ValidationReport, quick: bool) -> None:
    from repro.motifs import MOTIFS

    sim_ranks = 512 if quick else None
    amr = MOTIFS["amr"](seed=0, sim_ranks=sim_ranks).run()
    report.check("Fig 1a", "AMR extremes out to mid-400s", amr.max_posted_length,
                 "390..439", 390 <= amr.max_posted_length <= 439)
    sweep = MOTIFS["sweep3d"](seed=0, sim_ranks=sim_ranks).run()
    report.check("Fig 1b", "Sweep3D capped below 200", sweep.max_posted_length,
                 "<= 199", sweep.max_posted_length <= 199)
    halo = MOTIFS["halo3d"](seed=0, sim_ranks=sim_ranks).run()
    tiny = halo.posted[:15].sum() / halo.posted.sum()
    report.check("Fig 1c", "Halo3D dominated by tiny queues",
                 f"{100 * tiny:.1f}% < 15", "> 90%", tiny > 0.9)


def _validate_spatial(report: ValidationReport, quick: bool) -> None:
    from repro.arch import BROADWELL, SANDY_BRIDGE
    from repro.bench.osu import OsuConfig, osu_bandwidth
    from repro.bench.figures import default_link

    iters = 2 if quick else 5
    for arch in (SANDY_BRIDGE, BROADWELL):
        link = default_link(arch)

        def bw(family, depth=1024, nbytes=1):
            return osu_bandwidth(
                OsuConfig(arch=arch, link=link, queue_family=family,
                          msg_bytes=nbytes, search_depth=depth, iterations=iters)
            ).mibps

        ratio = bw("lla-8") / bw("baseline")
        report.check(f"Fig {'4' if arch.name.startswith('sandy') else '5'}",
                     f"LLA-8 gain at depth 1024 ({arch.name})",
                     f"{ratio:.2f}x", "1.8x..5x", 1.8 <= ratio <= 5.0)
        big_base = bw("baseline", nbytes=1 << 20)
        big_lla = bw("lla-8", nbytes=1 << 20)
        conv = abs(big_lla - big_base) / big_base
        report.check(f"Fig {'4' if arch.name.startswith('sandy') else '5'}",
                     f"1 MiB network-bound convergence ({arch.name})",
                     f"{100 * conv:.2f}% apart", "< 2%", conv < 0.02)


def _validate_temporal(report: ValidationReport, quick: bool) -> None:
    from repro.arch import BROADWELL, SANDY_BRIDGE
    from repro.bench.osu import OsuConfig, osu_bandwidth
    from repro.bench.figures import default_link

    iters = 2 if quick else 5

    def bw(arch, family, heated):
        return osu_bandwidth(
            OsuConfig(arch=arch, link=default_link(arch), queue_family=family,
                      heated=heated, msg_bytes=1, search_depth=1024, iterations=iters)
        ).mibps

    snb_gain = bw(SANDY_BRIDGE, "baseline", True) / bw(SANDY_BRIDGE, "baseline", False)
    report.check("Fig 6", "hot caching wins on Sandy Bridge",
                 f"{snb_gain:.2f}x", "> 1.2x", snb_gain > 1.2)
    bdw_gain = bw(BROADWELL, "baseline", True) / bw(BROADWELL, "baseline", False)
    report.check("Fig 7", "hot caching loses on Broadwell (sign flip)",
                 f"{bdw_gain:.2f}x", "< 1.0x", bdw_gain < 1.0)
    bdw_lla = bw(BROADWELL, "lla-2", True) / bw(BROADWELL, "lla-2", False)
    report.check("Fig 7", "HC+LLA slightly below LLA on Broadwell",
                 f"{bdw_lla:.2f}x", "0.7x..1.0x", 0.7 <= bdw_lla < 1.0)


def _validate_heater_micro(report: ValidationReport, quick: bool) -> None:
    from repro.arch import BROADWELL, SANDY_BRIDGE
    from repro.bench.heater_micro import heater_microbenchmark

    samples = 512 if quick else 2048
    for arch, (cold_p, hot_p) in (
        (SANDY_BRIDGE, (47.5, 22.9)),
        (BROADWELL, (38.5, 22.8)),
    ):
        r = heater_microbenchmark(arch, samples=samples)
        ok = abs(r.cold_ns - cold_p) / cold_p < 0.15 and abs(r.hot_ns - hot_p) / hot_p < 0.15
        report.check("§4.3 micro", f"{arch.name} random-access ns",
                     f"{r.cold_ns:.1f}->{r.hot_ns:.1f}",
                     f"{cold_p}->{hot_p} ±15%", ok)


def _validate_apps(report: ValidationReport, quick: bool) -> None:
    from repro.apps import fig8_amg_scaling, fig9_minife_lengths, fig10_fds_speedups

    s8 = fig8_amg_scaling()
    pct8 = 100 * (s8.series["Baseline"].at(1024) - s8.series["LLA"].at(1024)) / s8.series["Baseline"].at(1024)
    report.check("Fig 8", "AMG LLA gain at 1024 ranks",
                 f"{pct8:.2f}%", "1%..6% (paper 2.9%)", 1.0 < pct8 < 6.0)

    s9 = fig9_minife_lengths()
    pct9 = 100 * (s9.series["Baseline"].at(2048) - s9.series["LLA"].at(2048)) / s9.series["Baseline"].at(2048)
    report.check("Fig 9", "MiniFE LLA gain at length 2048",
                 f"{pct9:.2f}%", "1%..5% (paper 2.3%)", 1.0 < pct9 < 5.0)

    scales = (1024, 4096) if quick else (1024, 2048, 4096, 8192)
    s10 = fig10_fds_speedups(scales=scales)
    lla4k = s10.series["LLA Nehalem"].at(4096)
    report.check("Fig 10", "FDS LLA speedup at 4k ranks",
                 f"{lla4k:.2f}x", "1.5x..2.6x (paper 2x)", 1.5 <= lla4k <= 2.6)
    hc4k = s10.series["HC Nehalem"].at(4096)
    report.check("Fig 10", "FDS HC slowdown at scale",
                 f"{hc4k:.2f}x", "< 1.0x", hc4k < 1.0)
    both1k = s10.series["HC+LLA Nehalem"].at(1024)
    lla1k = s10.series["LLA Nehalem"].at(1024)
    report.check("Fig 10", "HC+LLA above LLA at 1024",
                 f"{both1k:.3f} vs {lla1k:.3f}", "HC+LLA > LLA", both1k > lla1k)


_SECTIONS: List[Callable[[ValidationReport, bool], None]] = [
    _validate_table1,
    _validate_fig1,
    _validate_spatial,
    _validate_temporal,
    _validate_heater_micro,
    _validate_apps,
]


def run_validation(*, quick: bool = False, sections: Optional[List[str]] = None) -> ValidationReport:
    """Run all (or the named) validation sections; returns the report."""
    report = ValidationReport()
    for fn in _SECTIONS:
        name = fn.__name__.replace("_validate_", "")
        if sections is not None and name not in sections:
            continue
        fn(report, quick)
    return report
