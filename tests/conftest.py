"""Shared pytest configuration: the per-test hang watchdog.

The service tests exercise supervisor threads, process pools, and
injected stalls; a bug in any of those hangs rather than fails. CI must
get a stack trace and a red build, not a 6-hour timeout — and this repo
vendors no plugins (``pytest-timeout`` is not installed), so the watchdog
is a plain autouse fixture: a daemon timer that, if a test outlives its
budget, dumps every thread's traceback with :mod:`faulthandler` and hard-
exits the process (``os._exit`` — a hung supervisor thread may well not
honor anything politer).

Budget: ``REPRO_TEST_TIMEOUT_S`` (default 180 s — generous; the full
suite's slowest test is well under a minute), or per-test via
``@pytest.mark.timeout(seconds)`` for tests that intentionally wait.
Set the env var to 0 to disable (e.g. while stepping through a debugger).
"""

import faulthandler
import os
import sys
import threading

import pytest

#: Environment override for the per-test hang budget (seconds; 0 disables).
ENV_TEST_TIMEOUT = "REPRO_TEST_TIMEOUT_S"

#: Default per-test budget. High on purpose: it exists to catch *hangs*,
#: not slow tests — a wrongly killed CI run costs more than a late one.
DEFAULT_TEST_TIMEOUT_S = 180.0

#: Exit code on watchdog abort (EX_SOFTWARE; distinct from pytest's 1/2).
WATCHDOG_EXIT_CODE = 70


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): override the per-test hang watchdog budget "
        f"(default ${ENV_TEST_TIMEOUT} or {DEFAULT_TEST_TIMEOUT_S:g}s)",
    )


@pytest.fixture(autouse=True)
def _hang_watchdog(request):
    """Abort the whole test process if one test exceeds its budget."""
    budget = float(os.environ.get(ENV_TEST_TIMEOUT, DEFAULT_TEST_TIMEOUT_S))
    marker = request.node.get_closest_marker("timeout")
    if marker is not None and marker.args:
        budget = float(marker.args[0])
    if budget <= 0:
        yield
        return

    def _abort() -> None:
        sys.stderr.write(
            f"\n[watchdog] test exceeded {budget:g}s: {request.node.nodeid}\n"
            "[watchdog] dumping all thread stacks, then aborting the run\n"
        )
        sys.stderr.flush()
        faulthandler.dump_traceback(file=sys.stderr)
        sys.stderr.flush()
        os._exit(WATCHDOG_EXIT_CODE)

    timer = threading.Timer(budget, _abort)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()
