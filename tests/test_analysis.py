"""Tests for series containers, statistics, and text renderers."""

import numpy as np
import pytest

from repro.analysis import (
    Series,
    Sweep,
    TrialStats,
    factor_speedup,
    mean_std,
    render_series_table,
    render_table,
)
from repro.analysis.stats import QuantileReservoir, percent_improvement


class TestSeries:
    def test_add_and_at(self):
        s = Series("x")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.at(2) == 20.0
        assert len(s) == 2

    def test_at_missing_raises(self):
        s = Series("x")
        s.add(1, 10.0)
        with pytest.raises(ValueError):
            s.at(3)

    def test_ratio_to(self):
        a = Series("a")
        b = Series("b")
        for x in (1, 2):
            a.add(x, 10.0 * x)
            b.add(x, 5.0 * x)
        r = a.ratio_to(b)
        assert r.y == [2.0, 2.0]

    def test_ratio_skips_missing_x(self):
        a = Series("a")
        a.add(1, 10.0)
        a.add(3, 30.0)
        b = Series("b")
        b.add(1, 5.0)
        r = a.ratio_to(b)
        assert r.x == [1.0]

    def test_duplicate_x_first_occurrence_wins(self):
        # list.index semantics: at() returns the first matching point.
        s = Series("d")
        s.add(1, 10.0)
        s.add(1, 99.0)
        assert s.at(1) == 10.0
        assert s.index_of(1) == 0

    def test_index_map_survives_interleaved_adds(self):
        s = Series("i")
        s.add(1, 10.0)
        assert s.at(1) == 10.0  # builds the lazy index
        s.add(2, 20.0)  # must keep (or correctly rebuild) it
        assert s.at(2) == 20.0
        s.add(1, 99.0)
        assert s.at(1) == 10.0

    def test_index_rebuilds_after_direct_x_append(self):
        # Older call sites append to .x/.y directly; the map must notice.
        s = Series("raw")
        s.add(1, 10.0)
        assert s.at(1) == 10.0
        s.x.append(5.0)
        s.y.append(50.0)
        s.yerr.append(0.0)
        assert s.at(5) == 50.0

    def test_exact_float_matching(self):
        # Lookups are exact, same as list.index — no tolerance matching.
        s = Series("f")
        s.add(0.1, 1.0)
        assert s.at(0.1) == 1.0
        with pytest.raises(ValueError):
            s.at(0.1000001)

    def test_int_and_float_keys_coincide(self):
        s = Series("c")
        s.add(1024, 7.0)
        assert s.at(1024.0) == 7.0


class TestSweep:
    def test_series_for_creates_once(self):
        sw = Sweep("t", "x", "y")
        s1 = sw.series_for("a")
        s2 = sw.series_for("a")
        assert s1 is s2
        assert sw.labels() == ["a"]

    def test_x_values_from_first_series(self):
        sw = Sweep("t", "x", "y")
        sw.series_for("a").add(1, 2.0)
        assert sw.x_values() == [1.0]
        assert Sweep("t", "x", "y").x_values() == []


class TestStats:
    def test_trial_stats(self):
        st = TrialStats.from_values([1.0, 2.0, 3.0])
        assert st.mean == 2.0
        assert st.min == 1.0 and st.max == 3.0 and st.n == 3
        assert st.std == pytest.approx(0.8165, rel=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrialStats.from_values([])

    def test_mean_std(self):
        mean, std = mean_std([2.0, 2.0])
        assert mean == 2.0 and std == 0.0

    def test_factor_speedup(self):
        assert factor_speedup(10.0, 5.0) == 2.0
        with pytest.raises(ValueError):
            factor_speedup(10.0, 0.0)

    def test_percent_improvement(self):
        assert percent_improvement(100.0, 97.1) == pytest.approx(2.9)
        with pytest.raises(ValueError):
            percent_improvement(0.0, 1.0)


class TestQuantileReservoir:
    def test_exact_below_capacity(self):
        values = [float(v) for v in range(100, 0, -1)]
        r = QuantileReservoir(capacity=128, seed=0)
        r.extend(values)
        assert r.exact and r.sample_size == 100 and len(r) == 100
        for q in (0.0, 0.5, 0.95, 1.0):
            assert r.quantile(q) == pytest.approx(float(np.quantile(values, q)))

    def test_quantiles_tuple_matches_scalar(self):
        r = QuantileReservoir(capacity=64, seed=1)
        r.extend(float(v) for v in range(50))
        p50, p99 = r.quantiles((0.5, 0.99))
        assert p50 == r.quantile(0.5) and p99 == r.quantile(0.99)

    def test_bounded_sample_past_capacity(self):
        r = QuantileReservoir(capacity=32, seed=2)
        r.extend(float(v) for v in range(10_000))
        assert not r.exact
        assert r.sample_size == 32 and r.count == 10_000

    def test_seeded_determinism_past_capacity(self):
        def fill(seed):
            r = QuantileReservoir(capacity=32, seed=seed)
            r.extend(float(v) for v in range(5_000))
            return r.quantiles((0.5, 0.95, 0.99))

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)

    def test_large_stream_quantiles_approximate_truth(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(100.0, size=50_000)
        r = QuantileReservoir(capacity=4096, seed=3)
        r.extend(float(v) for v in values)
        truth = float(np.quantile(values, 0.95))
        assert r.quantile(0.95) == pytest.approx(truth, rel=0.1)

    def test_mean_exact_while_sample_fits(self):
        r = QuantileReservoir(capacity=8, seed=0)
        r.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert r.exact and r.mean() == pytest.approx(3.5)

    def test_reset_clears_sample(self):
        r = QuantileReservoir(capacity=8, seed=0)
        r.extend([1.0, 2.0])
        r.reset()
        assert r.count == 0 and r.sample_size == 0
        with pytest.raises(ValueError):
            r.quantile(0.5)

    def test_error_cases(self):
        with pytest.raises(ValueError):
            QuantileReservoir(capacity=0)
        r = QuantileReservoir(capacity=4, seed=0)
        with pytest.raises(ValueError):
            r.quantile(0.5)  # empty
        r.add(1.0)
        with pytest.raises(ValueError):
            r.quantile(1.5)  # out of [0, 1]


class TestRenderers:
    def test_render_table_aligns(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_scientific_for_extremes(self):
        out = render_table(["v"], [[1e7], [1e-5]])
        assert "e+07" in out and "e-05" in out

    def test_render_series_table(self):
        sw = Sweep("Fig", "depth", "MiBps")
        sw.series_for("baseline").add(1, 0.5)
        sw.series_for("LLA").add(1, 1.5)
        out = render_series_table(sw)
        assert "Fig" in out and "baseline" in out and "LLA" in out
        assert "0.5" in out and "1.5" in out
