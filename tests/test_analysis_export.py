"""Tests for sweep export (CSV/JSON)."""

import pytest

from repro.analysis.export import (
    sweep_from_csv,
    sweep_from_json,
    sweep_to_csv,
    sweep_to_json,
    write_sweep,
)
from repro.analysis.series import Sweep
from repro.mem.result import LevelStats


def sample_sweep():
    sw = Sweep("Fig X", "depth", "MiBps")
    a = sw.series_for("baseline")
    b = sw.series_for("LLA")
    for x, ya, yb in [(1, 0.9, 1.0), (64, 0.3, 0.6), (1024, 0.02, 0.08)]:
        a.add(x, ya, 0.01)
        b.add(x, yb, 0.02)
    return sw


def sample_sweep_with_mem_stats():
    sw = sample_sweep()
    stats = {}
    for i, label in enumerate(sw.labels(), start=1):
        ms = LevelStats()
        ms.loads = 10 * i
        ms.lines = 40 * i
        ms.l1_hits = 18 * i
        ms.l3_hits = 12 * i
        ms.dram_fills = 10 * i
        ms.cycles = 123.5 * i
        stats[label] = ms
    sw.meta["mem_stats"] = stats
    return sw


class TestCsv:
    def test_header_and_rows(self):
        text = sweep_to_csv(sample_sweep())
        lines = text.strip().splitlines()
        assert lines[0] == "depth,baseline,LLA"
        assert len(lines) == 4
        assert lines[1].startswith("1.0,0.9,1.0")

    def test_ragged_series_padded(self):
        sw = Sweep("R", "x", "y")
        sw.series_for("a").add(1, 1.0)
        sw.series_for("a").add(2, 2.0)
        sw.series_for("b").add(1, 3.0)
        lines = sweep_to_csv(sw).strip().splitlines()
        assert lines[2] == "2.0,2.0,"


class TestJson:
    def test_roundtrip(self):
        sw = sample_sweep()
        restored = sweep_from_json(sweep_to_json(sw))
        assert restored.title == sw.title
        assert restored.labels() == sw.labels()
        for label in sw.labels():
            assert restored.series[label].x == sw.series[label].x
            assert restored.series[label].y == sw.series[label].y
            assert restored.series[label].yerr == sw.series[label].yerr

    def test_axes_preserved(self):
        restored = sweep_from_json(sweep_to_json(sample_sweep()))
        assert restored.xlabel == "depth" and restored.ylabel == "MiBps"

    def test_mem_stats_roundtrip(self):
        sw = sample_sweep_with_mem_stats()
        restored = sweep_from_json(sweep_to_json(sw))
        assert set(restored.meta["mem_stats"]) == {"baseline", "LLA"}
        for label, original in sw.meta["mem_stats"].items():
            back = restored.meta["mem_stats"][label]
            assert isinstance(back, LevelStats)
            assert back.snapshot() == original.snapshot()

    def test_no_mem_stats_key_when_absent(self):
        import json

        doc = json.loads(sweep_to_json(sample_sweep()))
        assert "mem_stats" not in doc
        assert sweep_from_json(json.dumps(doc)).meta == {}


class TestCsvRoundTrip:
    def test_values_reproduced(self):
        sw = sample_sweep()
        restored = sweep_from_csv(sweep_to_csv(sw), title=sw.title, ylabel=sw.ylabel)
        assert restored.labels() == sw.labels()
        assert restored.xlabel == sw.xlabel
        for label in sw.labels():
            assert restored.series[label].x == sw.series[label].x
            assert restored.series[label].y == sw.series[label].y

    def test_ragged_cells_skipped(self):
        sw = Sweep("R", "x", "y")
        sw.series_for("a").add(1, 1.0)
        sw.series_for("a").add(2, 2.0)
        sw.series_for("b").add(1, 3.0)
        restored = sweep_from_csv(sweep_to_csv(sw))
        assert restored.series["a"].y == [1.0, 2.0]
        assert restored.series["b"].x == [1.0]

    def test_rejects_non_sweep_text(self):
        with pytest.raises(ValueError):
            sweep_from_csv("just-one-column\n1\n2\n")


class TestWriteSweep:
    def test_write_csv(self, tmp_path):
        path = tmp_path / "fig.csv"
        write_sweep(path, sample_sweep())
        assert path.read_text().startswith("depth,baseline,LLA")

    def test_write_json(self, tmp_path):
        path = tmp_path / "fig.json"
        write_sweep(path, sample_sweep())
        assert sweep_from_json(path.read_text()).title == "Fig X"

    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(ValueError):
            write_sweep(tmp_path / "fig.xlsx", sample_sweep())

    def test_json_file_roundtrips_everything(self, tmp_path):
        sw = sample_sweep_with_mem_stats()
        path = tmp_path / "fig.json"
        write_sweep(path, sw)
        restored = sweep_from_json(path.read_text(encoding="utf-8"))
        for label in sw.labels():
            assert restored.series[label].y == sw.series[label].y
            assert restored.series[label].yerr == sw.series[label].yerr
        for label, original in sw.meta["mem_stats"].items():
            assert restored.meta["mem_stats"][label].snapshot() == original.snapshot()

    def test_csv_file_roundtrips_values(self, tmp_path):
        sw = sample_sweep()
        path = tmp_path / "fig.csv"
        write_sweep(path, sw)
        restored = sweep_from_csv(path.read_text(encoding="utf-8"), title=sw.title)
        for label in sw.labels():
            assert restored.series[label].x == sw.series[label].x
            assert restored.series[label].y == sw.series[label].y


class TestMessageRate:
    def test_rate_inverse_of_bandwidth_time(self):
        from repro.arch import SANDY_BRIDGE
        from repro.bench.osu import OsuConfig, osu_bandwidth, osu_message_rate

        cfg = OsuConfig(arch=SANDY_BRIDGE, msg_bytes=8, search_depth=16, iterations=2)
        rate = osu_message_rate(cfg)
        point = osu_bandwidth(cfg)
        implied = point.mibps * 1024 * 1024 / 8
        assert rate == pytest.approx(implied, rel=1e-6)

    def test_rate_falls_with_depth(self):
        from repro.arch import SANDY_BRIDGE
        from repro.bench.osu import OsuConfig, osu_message_rate

        shallow = osu_message_rate(
            OsuConfig(arch=SANDY_BRIDGE, msg_bytes=8, search_depth=4, iterations=2)
        )
        deep = osu_message_rate(
            OsuConfig(arch=SANDY_BRIDGE, msg_bytes=8, search_depth=1024, iterations=2)
        )
        assert deep < shallow
