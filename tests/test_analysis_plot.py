"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.plot import MARKS, render_ascii_chart, render_histogram
from repro.analysis.series import Sweep


def sample_sweep():
    sw = Sweep("Panel", "depth", "MiBps")
    a = sw.series_for("baseline")
    b = sw.series_for("LLA")
    for x, ya, yb in [(1, 1.0, 1.1), (10, 0.5, 0.9), (100, 0.1, 0.4), (1000, 0.01, 0.05)]:
        a.add(x, ya)
        b.add(x, yb)
    return sw


class TestAsciiChart:
    def test_contains_title_and_legend(self):
        out = render_ascii_chart(sample_sweep())
        assert "Panel" in out
        assert "o=baseline" in out and "x=LLA" in out

    def test_marks_present(self):
        out = render_ascii_chart(sample_sweep())
        assert "o" in out and "x" in out

    def test_dimensions(self):
        out = render_ascii_chart(sample_sweep(), width=40, height=10)
        lines = out.splitlines()
        # title + height rows + axis + labels + legend
        assert len(lines) == 1 + 10 + 3

    def test_empty_sweep(self):
        out = render_ascii_chart(Sweep("Empty", "x", "y"))
        assert "no data" in out

    def test_zero_values_skipped_on_log(self):
        sw = Sweep("Z", "x", "y")
        s = sw.series_for("s")
        s.add(1, 0.0)
        s.add(2, 1.0)
        out = render_ascii_chart(sw, log_y=True)
        assert "Z" in out

    def test_linear_axes(self):
        out = render_ascii_chart(sample_sweep(), log_x=False, log_y=False)
        assert "Panel" in out

    def test_single_point(self):
        sw = Sweep("One", "x", "y")
        sw.series_for("s").add(5, 2.0)
        out = render_ascii_chart(sw)
        assert "One" in out

    def test_many_series_cycle_marks(self):
        sw = Sweep("Many", "x", "y")
        for i in range(len(MARKS) + 2):
            sw.series_for(f"s{i}").add(1, float(i + 1))
        out = render_ascii_chart(sw)
        assert f"{MARKS[0]}=s0" in out


class TestHistogram:
    def test_bars_scale_with_log_counts(self):
        out = render_histogram(["0-4", "5-9"], [10**6, 10], title="H")
        lines = out.splitlines()
        assert lines[0] == "H"
        big = lines[1].count("#")
        small = lines[2].count("#")
        assert big > 3 * small > 0

    def test_zero_count_renders_empty_bar(self):
        out = render_histogram(["a", "b"], [100, 0])
        assert out.splitlines()[-1].rstrip().endswith("0")

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            render_histogram(["a"], [1, 2])

    def test_counts_annotated(self):
        out = render_histogram(["a"], [12345])
        assert "1.23e+04" in out
