"""Tests for the proxy applications (Figures 8-10 shapes)."""

import numpy as np
import pytest

from repro.apps import (
    Amg2013,
    AppConfig,
    FireDynamicsSimulator,
    MatchPhaseSimulator,
    MiniFE,
    MiniMD,
)
from repro.apps.base import PhaseShape
from repro.apps.fds import _config as fds_config
from repro.arch import BROADWELL, NEHALEM
from repro.net import OMNIPATH


def bdw_cfg(**kw):
    defaults = dict(arch=BROADWELL, nranks=512, link=OMNIPATH, sample_messages=6)
    defaults.update(kw)
    return AppConfig(**defaults)


class TestMatchPhaseSimulator:
    def test_set_depth(self):
        sim = MatchPhaseSimulator(bdw_cfg())
        sim.set_depth(32)
        assert len(sim.prq) == 32

    def test_phase_preserves_depth(self):
        sim = MatchPhaseSimulator(bdw_cfg())
        shape = PhaseShape(prq_depth=32, messages=6, msg_bytes=1024)
        sim.run_phase(shape)
        assert len(sim.prq) == 32

    def test_match_cycles_positive(self):
        sim = MatchPhaseSimulator(bdw_cfg())
        stats = sim.run_phase(PhaseShape(prq_depth=64, messages=6, msg_bytes=1024))
        assert stats["match_cycles"] > 0

    def test_deeper_positions_cost_more(self):
        front = MatchPhaseSimulator(bdw_cfg()).run_phase(
            PhaseShape(prq_depth=256, messages=6, msg_bytes=1024,
                       match_position_low=0.0, match_position_high=0.1)
        )
        back = MatchPhaseSimulator(bdw_cfg()).run_phase(
            PhaseShape(prq_depth=256, messages=6, msg_bytes=1024,
                       match_position_low=0.9, match_position_high=1.0)
        )
        assert back["match_cycles"] > front["match_cycles"]

    def test_zero_messages(self):
        sim = MatchPhaseSimulator(bdw_cfg())
        stats = sim.run_phase(PhaseShape(prq_depth=8, messages=0, msg_bytes=64))
        assert stats["match_cycles"] == 0.0


class TestAppRuns:
    def test_result_decomposition(self):
        res = Amg2013().run(bdw_cfg(nranks=128))
        assert res.runtime_s == pytest.approx(res.compute_s + res.comm_s)
        assert res.app == "amg2013"

    def test_variant_labels(self):
        assert bdw_cfg(queue_family="lla-2").variant_label() == "LLA"
        assert bdw_cfg(queue_family="lla-large").variant_label() == "LLA-Large"
        assert bdw_cfg(queue_family="baseline", heated=True).variant_label() == "HC"
        assert bdw_cfg(queue_family="lla-2", heated=True).variant_label() == "HC+LLA"

    def test_minimd_short_lists(self):
        res = MiniMD().run(bdw_cfg())
        assert res.details["prq_depth"] == 6
        # Matching is invisible for MiniMD: compute dominates utterly.
        assert res.comm_s < 0.2 * res.compute_s


class TestFig8Amg:
    def test_lla_improves_percent_range_at_1024(self):
        base = Amg2013().run(bdw_cfg(nranks=1024, fragmented=True))
        lla = Amg2013().run(bdw_cfg(nranks=1024, queue_family="lla-2"))
        pct = 100.0 * (base.runtime_s - lla.runtime_s) / base.runtime_s
        assert 1.0 < pct < 6.0  # paper: 2.9%

    def test_weak_scaling_flatish(self):
        small = Amg2013().run(bdw_cfg(nranks=128))
        large = Amg2013().run(bdw_cfg(nranks=1024))
        assert large.runtime_s < small.runtime_s * 1.3


class TestFig9MiniFE:
    def test_improvement_grows_with_length(self):
        def pct(length):
            base = MiniFE(length).run(bdw_cfg())
            lla = MiniFE(length).run(bdw_cfg(queue_family="lla-2"))
            return 100.0 * (base.runtime_s - lla.runtime_s) / base.runtime_s

        short, long_ = pct(128), pct(2048)
        assert long_ > short
        assert 1.0 < long_ < 5.0  # paper: 2.3% at 2048


class TestFig10Fds:
    @staticmethod
    def _speedup(family, heated, nranks):
        app = FireDynamicsSimulator()
        base = app.run(fds_config("nehalem", "baseline", False, nranks, 0))
        var = app.run(fds_config("nehalem", family, heated, nranks, 0))
        return base.runtime_s / var.runtime_s

    def test_lla_speedup_grows_with_scale(self):
        assert self._speedup("lla-2", False, 4096) > self._speedup("lla-2", False, 1024)

    def test_lla_near_2x_at_4k(self):
        assert 1.5 < self._speedup("lla-2", False, 4096) < 2.6  # paper: 2x

    def test_hc_alone_slows_at_scale(self):
        assert self._speedup("baseline", True, 4096) < 1.0

    def test_hc_lla_beats_lla_at_1024(self):
        assert self._speedup("lla-2", True, 1024) > self._speedup("lla-2", False, 1024)

    def test_lla_large_at_least_lla_at_8k(self):
        large = self._speedup("lla-large", False, 8192)
        assert large > 1.8  # paper: 2x at 8192

    def test_broadwell_lla_modest_at_1024(self):
        app = FireDynamicsSimulator()
        base = app.run(fds_config("broadwell", "baseline", False, 1024, 0))
        lla = app.run(fds_config("broadwell", "lla-2", False, 1024, 0))
        speedup = base.runtime_s / lla.runtime_s
        assert 1.02 < speedup < 1.45  # paper: 1.21x
