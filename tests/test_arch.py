"""Tests for the architecture presets and hierarchy construction."""

import pytest

from repro.arch import (
    ALL_ARCHS,
    BROADWELL,
    KNL,
    NEHALEM,
    SANDY_BRIDGE,
    ArchSpec,
    get_arch,
)
from repro.errors import ConfigurationError


class TestPresets:
    def test_all_presets_build(self):
        for spec in ALL_ARCHS.values():
            hier = spec.build_hierarchy()
            assert hier.n_cores == 2

    def test_lookup_by_name(self):
        assert get_arch("sandy-bridge") is SANDY_BRIDGE
        assert get_arch("Sandy_Bridge") is SANDY_BRIDGE

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_arch("zen4")

    def test_paper_platform_facts(self):
        # Section 4.1's system table.
        assert SANDY_BRIDGE.ghz == 2.6 and SANDY_BRIDGE.cores_per_socket == 8
        assert BROADWELL.ghz == 2.1 and BROADWELL.cores_per_socket == 18
        assert NEHALEM.ghz == 2.53 and NEHALEM.cores_per_socket == 4
        assert KNL.cores_per_socket == 68

    def test_broadwell_llc_slower_than_sandy_bridge(self):
        # The decoupled-clock contrast the paper's section 4.3 leans on.
        assert BROADWELL.l3_latency > SANDY_BRIDGE.l3_latency

    def test_broadwell_streams_dram_better(self):
        assert BROADWELL.dram_stream_coverage > SANDY_BRIDGE.dram_stream_coverage
        assert BROADWELL.l3_stream_coverage < SANDY_BRIDGE.l3_stream_coverage

    def test_latencies_monotone_per_arch(self):
        for spec in ALL_ARCHS.values():
            assert spec.l1_latency < spec.l2_latency < spec.l3_latency < spec.dram_latency


class TestConversions:
    def test_cycles_ns_roundtrip(self):
        assert SANDY_BRIDGE.ns(SANDY_BRIDGE.cycles(123.0)) == pytest.approx(123.0)

    def test_seconds(self):
        assert SANDY_BRIDGE.seconds(2.6e9) == pytest.approx(1.0)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            ArchSpec(name="bad", ghz=0.0, cores_per_socket=2)
        with pytest.raises(ConfigurationError):
            ArchSpec(name="bad", ghz=1.0, cores_per_socket=0)


class TestBuildHierarchy:
    def test_core_limit_enforced(self):
        with pytest.raises(ConfigurationError):
            NEHALEM.build_hierarchy(n_cores=5)

    def test_latencies_propagate(self):
        h = BROADWELL.build_hierarchy()
        assert h.l3.latency == BROADWELL.l3_latency
        assert h.dram_latency == BROADWELL.dram_latency

    def test_prefetchers_attached(self):
        h = SANDY_BRIDGE.build_hierarchy()
        names = {pf.name for pf in h.cores[0].l2_prefetchers}
        assert names == {"adjacent-pair", "streamer"}
        assert [pf.name for pf in h.cores[0].l1_prefetchers] == ["next-line"]

    def test_nehalem_lacks_adjacent_pair(self):
        h = NEHALEM.build_hierarchy()
        names = {pf.name for pf in h.cores[0].l2_prefetchers}
        assert "adjacent-pair" not in names

    def test_prefetch_disable(self):
        h = SANDY_BRIDGE.build_hierarchy(prefetch_enabled=False)
        assert h.cores[0].l1_prefetchers == []
        assert h.cores[0].l2_prefetchers == []

    def test_coverage_propagates(self):
        h = BROADWELL.build_hierarchy()
        assert h.l3_stream_coverage == BROADWELL.l3_stream_coverage
