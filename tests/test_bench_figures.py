"""Reduced-sweep runs of the figure drivers, checking the paper's shapes."""

import pytest

from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.bench.figures import (
    PANEL_A_DEPTH,
    SPATIAL_VARIANTS,
    TEMPORAL_VARIANTS,
    default_link,
    fig_spatial_msg_size,
    fig_spatial_search_length,
    fig_temporal_search_length,
)
from repro.net import OMNIPATH, QLOGIC_QDR

DEPTHS = [8, 512, 1024]
SIZES = [1, 4096, 1 << 20]


class TestSetup:
    def test_variant_lineups_match_paper(self):
        assert [v[0] for v in SPATIAL_VARIANTS] == [
            "baseline", "LLA - 2", "LLA - 4", "LLA - 8", "LLA - 16", "LLA - 32",
        ]
        assert [v[0] for v in TEMPORAL_VARIANTS] == ["baseline", "HC", "LLA", "HC+LLA"]

    def test_panel_a_depth(self):
        assert PANEL_A_DEPTH == 1024

    def test_links_by_platform(self):
        assert default_link(SANDY_BRIDGE) is QLOGIC_QDR
        assert default_link(BROADWELL) is OMNIPATH


class TestSpatialPanels:
    @pytest.fixture(scope="class")
    def snb_panel_b(self):
        return fig_spatial_search_length(
            SANDY_BRIDGE, msg_bytes=1, depths=DEPTHS, iterations=2
        )

    def test_all_series_present(self, snb_panel_b):
        assert set(snb_panel_b.labels()) == {v[0] for v in SPATIAL_VARIANTS}

    def test_lla_orders_above_baseline(self, snb_panel_b):
        base = snb_panel_b.series["baseline"]
        for label in ("LLA - 2", "LLA - 8", "LLA - 32"):
            lla = snb_panel_b.series[label]
            assert lla.at(1024) > base.at(1024) * 2

    def test_lla8_at_least_lla2(self, snb_panel_b):
        assert snb_panel_b.series["LLA - 8"].at(1024) >= snb_panel_b.series["LLA - 2"].at(1024)

    def test_bandwidth_decreases_with_depth(self, snb_panel_b):
        for series in snb_panel_b.series.values():
            assert series.at(8) > series.at(1024)

    def test_msg_size_panel_converges(self):
        panel = fig_spatial_msg_size(SANDY_BRIDGE, msg_sizes=SIZES, iterations=2)
        base = panel.series["baseline"]
        lla = panel.series["LLA - 8"]
        # Big gap at small sizes, convergence at 1 MiB.
        assert lla.at(1) > 2 * base.at(1)
        assert lla.at(1 << 20) == pytest.approx(base.at(1 << 20), rel=0.02)


class TestTemporalPanels:
    def test_sandy_bridge_ordering(self):
        panel = fig_temporal_search_length(
            SANDY_BRIDGE, msg_bytes=1, depths=[512], iterations=2
        )
        at = {label: panel.series[label].at(512) for label in panel.labels()}
        assert at["HC"] > at["baseline"]
        assert at["LLA"] > at["baseline"]
        assert at["HC+LLA"] > at["LLA"]

    def test_broadwell_sign_flip(self):
        """Figure 7: cache heating is a slight loss on Broadwell."""
        panel = fig_temporal_search_length(
            BROADWELL, msg_bytes=1, depths=[512], iterations=2
        )
        at = {label: panel.series[label].at(512) for label in panel.labels()}
        assert at["HC"] < at["baseline"]
        assert at["HC+LLA"] < at["LLA"]
        assert at["LLA"] > at["baseline"]
