"""The section 4.3 heater micro-benchmark must land in the paper's bands."""

import pytest

from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.bench.heater_micro import heater_microbenchmark


class TestHeaterMicro:
    @pytest.fixture(scope="class")
    def snb(self):
        return heater_microbenchmark(SANDY_BRIDGE, samples=1024, seed=0)

    @pytest.fixture(scope="class")
    def bdw(self):
        return heater_microbenchmark(BROADWELL, samples=1024, seed=0)

    def test_sandy_bridge_cold_near_paper(self, snb):
        assert snb.cold_ns == pytest.approx(47.5, rel=0.15)

    def test_sandy_bridge_hot_near_paper(self, snb):
        assert snb.hot_ns == pytest.approx(22.9, rel=0.15)

    def test_broadwell_cold_near_paper(self, bdw):
        assert bdw.cold_ns == pytest.approx(38.5, rel=0.15)

    def test_broadwell_hot_near_paper(self, bdw):
        assert bdw.hot_ns == pytest.approx(22.8, rel=0.15)

    def test_nearly_doubled_throughput(self, snb, bdw):
        """Paper: 'nearly a doubling of throughput' on both parts."""
        assert 1.5 < snb.speedup < 2.5
        assert 1.4 < bdw.speedup < 2.2

    def test_heating_helps_both_architectures(self, snb, bdw):
        # Random accesses cannot be prefetched, so — unlike the matching
        # workload — heating helps on Broadwell too (section 4.3's point).
        assert snb.hot_ns < snb.cold_ns
        assert bdw.hot_ns < bdw.cold_ns

    def test_deterministic(self):
        a = heater_microbenchmark(SANDY_BRIDGE, samples=256, seed=3)
        b = heater_microbenchmark(SANDY_BRIDGE, samples=256, seed=3)
        assert a.cold_ns == b.cold_ns and a.hot_ns == b.hot_ns
