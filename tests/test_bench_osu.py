"""Tests for the modified-OSU benchmark harness (Figures 4-7 mechanics)."""

import pytest

from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.bench.osu import (
    MSG_SIZE_SWEEP,
    SEARCH_LENGTH_SWEEP,
    OsuConfig,
    osu_bandwidth,
    osu_latency,
    sweep_points,
)
from repro.errors import ConfigurationError
from repro.net import QLOGIC_QDR


def cfg(**kw):
    defaults = dict(
        arch=SANDY_BRIDGE,
        link=QLOGIC_QDR,
        queue_family="baseline",
        msg_bytes=1,
        search_depth=64,
        iterations=3,
        warmup=1,
    )
    defaults.update(kw)
    return OsuConfig(**defaults)


class TestAxes:
    def test_paper_msg_size_axis(self):
        assert MSG_SIZE_SWEEP[0] == 1
        assert MSG_SIZE_SWEEP[-1] == 1 << 20  # 1 MiB

    def test_paper_search_length_axis(self):
        assert SEARCH_LENGTH_SWEEP[0] == 1
        assert SEARCH_LENGTH_SWEEP[-1] == 8192


class TestBandwidthPoint:
    def test_basic_run(self):
        point = osu_bandwidth(cfg())
        assert point.mibps > 0
        assert point.match_cycles.n == 3

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            osu_bandwidth(cfg(search_depth=-1))

    def test_deeper_queue_slower(self):
        shallow = osu_bandwidth(cfg(search_depth=4)).mibps
        deep = osu_bandwidth(cfg(search_depth=1024)).mibps
        assert deep < shallow

    def test_lla_faster_at_depth(self):
        base = osu_bandwidth(cfg(search_depth=1024)).mibps
        lla = osu_bandwidth(cfg(search_depth=1024, queue_family="lla-8")).mibps
        assert lla > 2 * base  # the paper's ~2x+ spatial gain

    def test_large_messages_network_bound(self):
        """Figures 4a/5a: curves converge at large sizes."""
        base = osu_bandwidth(cfg(msg_bytes=1 << 20, search_depth=1024))
        lla = osu_bandwidth(cfg(msg_bytes=1 << 20, search_depth=1024, queue_family="lla-8"))
        assert base.network_bound and lla.network_bound
        assert lla.mibps == pytest.approx(base.mibps, rel=0.01)

    def test_bandwidth_ceiling_near_link_peak(self):
        point = osu_bandwidth(cfg(msg_bytes=1 << 20, search_depth=0))
        assert point.mibps <= QLOGIC_QDR.peak_bandwidth_mibps()
        assert point.mibps > 0.8 * QLOGIC_QDR.peak_bandwidth_mibps()

    def test_small_messages_processing_bound(self):
        point = osu_bandwidth(cfg(msg_bytes=1, search_depth=1024))
        assert not point.network_bound

    def test_deterministic(self):
        a = osu_bandwidth(cfg(seed=5)).mibps
        b = osu_bandwidth(cfg(seed=5)).mibps
        assert a == b

    def test_variant_labels(self):
        assert cfg().variant_label() == "baseline"
        assert cfg(heated=True).variant_label() == "HC"
        assert cfg(queue_family="lla-2", heated=True).variant_label() == "HC+lla-2"


class TestTemporal:
    def test_hot_caching_wins_on_sandy_bridge(self):
        base = osu_bandwidth(cfg(search_depth=512)).mibps
        hc = osu_bandwidth(cfg(search_depth=512, heated=True)).mibps
        assert hc > base

    def test_hot_caching_loses_on_broadwell(self):
        base = osu_bandwidth(cfg(arch=BROADWELL, search_depth=512)).mibps
        hc = osu_bandwidth(cfg(arch=BROADWELL, search_depth=512, heated=True)).mibps
        assert hc < base

    def test_hc_lla_beats_lla_on_sandy_bridge(self):
        lla = osu_bandwidth(cfg(search_depth=512, queue_family="lla-2")).mibps
        both = osu_bandwidth(cfg(search_depth=512, queue_family="lla-2", heated=True)).mibps
        assert both > lla


class TestLatency:
    def test_latency_positive_and_grows_with_depth(self):
        fast = osu_latency(cfg(search_depth=1))
        slow = osu_latency(cfg(search_depth=1024))
        assert 0 < fast < slow

    def test_latency_includes_wire(self):
        lat = osu_latency(cfg(search_depth=0, msg_bytes=0))
        assert lat >= QLOGIC_QDR.transfer_us(0)


class TestSweep:
    def test_sweep_points_cross_product(self):
        points = sweep_points(cfg(), msg_sizes=[1, 64], depths=[1, 8])
        assert len(points) == 4
        assert {(p.msg_bytes, p.search_depth) for p in points} == {
            (1, 1), (1, 8), (64, 1), (64, 8),
        }
