"""Calibration snapshot guards.

The reproduction's figure shapes rest on a handful of calibrated per-entry
costs (MODELING.md section 3). These tests pin each to a band so future
edits to the cache model, prefetchers, or allocators cannot silently drift
the calibration. Bands are generous (±~30%) — they protect the *regime*,
not the fourth digit.
"""

import pytest

from repro.arch import BROADWELL, NEHALEM, SANDY_BRIDGE
from tests.test_matching_engine import cold_search_cycles

DEPTH = 1024


def per_entry(arch, family, **kw):
    return cold_search_cycles(arch, family, DEPTH, **kw) / (DEPTH + 1)


class TestPerEntryCostBands:
    """MODELING.md's table of cy/entry at depth 1024, as bands."""

    def test_snb_baseline_sequential(self):
        assert per_entry(SANDY_BRIDGE, "baseline") == pytest.approx(92, rel=0.3)

    def test_snb_baseline_fragmented(self):
        assert per_entry(SANDY_BRIDGE, "baseline", fragmented=True) == pytest.approx(130, rel=0.35)

    def test_snb_lla2(self):
        assert per_entry(SANDY_BRIDGE, "lla-2") == pytest.approx(29, rel=0.3)

    def test_snb_lla8(self):
        assert per_entry(SANDY_BRIDGE, "lla-8") == pytest.approx(26, rel=0.3)

    def test_bdw_baseline(self):
        assert per_entry(BROADWELL, "baseline") == pytest.approx(47, rel=0.3)

    def test_bdw_lla2(self):
        assert per_entry(BROADWELL, "lla-2") == pytest.approx(20, rel=0.3)

    def test_nhm_baseline_fragmented(self):
        # The FDS regime: near-DRAM per entry.
        assert per_entry(NEHALEM, "baseline", fragmented=True) == pytest.approx(155, rel=0.3)

    def test_nhm_lla2(self):
        assert per_entry(NEHALEM, "lla-2") == pytest.approx(46, rel=0.35)


class TestArchOrderings:
    """Relations (not magnitudes) every calibration must preserve."""

    def test_snb_baseline_slower_than_bdw_baseline(self):
        # Broadwell's tolerant streamer covers the gappy heap better.
        assert per_entry(SANDY_BRIDGE, "baseline") > per_entry(BROADWELL, "baseline")

    def test_fragmentation_always_hurts_baseline(self):
        for arch in (SANDY_BRIDGE, BROADWELL, NEHALEM):
            assert per_entry(arch, "baseline", fragmented=True) > per_entry(arch, "baseline")

    def test_lla_beats_baseline_everywhere(self):
        for arch in (SANDY_BRIDGE, BROADWELL, NEHALEM):
            assert per_entry(arch, "lla-2") < per_entry(arch, "baseline")

    def test_ratio_bands_for_headline_claims(self):
        """The figure-level factors live inside these per-entry ratios."""
        snb = per_entry(SANDY_BRIDGE, "baseline") / per_entry(SANDY_BRIDGE, "lla-8")
        assert 2.5 < snb < 5.0
        bdw = per_entry(BROADWELL, "baseline") / per_entry(BROADWELL, "lla-8")
        assert 1.8 < bdw < 4.0
        nhm = per_entry(NEHALEM, "baseline", fragmented=True) / per_entry(NEHALEM, "lla-2")
        assert 2.5 < nhm < 5.5  # feeds FDS's 2x at app level
