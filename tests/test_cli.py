"""Smoke tests for the CLI: each command runs and prints the right shape."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("table1", "fig1", "layout", "heater-micro", "ablation", "list"):
            assert parser.parse_args([cmd] if cmd == "list" else [cmd, "--quick"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "table1" in out and "fig10" in out

    def test_layout(self, capsys):
        out = run_cli(capsys, "layout", "--quick")
        assert "PRQ" in out and "UMQ" in out
        assert "2" in out and "3" in out  # Figure 2's entries per line

    def test_table1_quick(self, capsys):
        out = run_cli(capsys, "table1", "--quick")
        assert "32x32" in out and "27pt" in out
        assert "6146" in out  # the largest list length of Table 1

    def test_fig1_single_motif(self, capsys):
        out = run_cli(capsys, "fig1", "--quick", "--motif", "halo3d")
        assert "halo3d" in out and "posted" in out and "unexpected" in out

    def test_heater_micro(self, capsys):
        out = run_cli(capsys, "heater-micro", "--quick")
        assert "sandy-bridge" in out and "broadwell" in out

    def test_ablation_quick(self, capsys):
        out = run_cli(capsys, "ablation", "--quick")
        assert "CAT partition" in out and "hot caching" in out


class TestNewCommands:
    def test_offload_quick(self, capsys):
        out = run_cli(capsys, "offload", "--quick")
        assert "bxi-like" in out and "psm2-like" in out and "software-only" in out

    def test_chart_flag(self, capsys):
        out = run_cli(capsys, "fig6", "--quick", "--chart")
        assert "o=baseline" in out  # chart legend present
        assert "HC+LLA" in out

    def test_validate_registered(self):
        parser = build_parser()
        args = parser.parse_args(["validate", "--quick"])
        assert args.command == "validate"

    def test_mem_stats_flag_registered(self):
        parser = build_parser()
        for cmd in ("fig4", "fig5", "fig6", "fig7", "ablation"):
            args = parser.parse_args([cmd, "--quick", "--mem-stats"])
            assert args.mem_stats is True

    def test_ablation_mem_stats(self, capsys):
        out = run_cli(capsys, "ablation", "--quick", "--mem-stats")
        assert "Memory-level hit attribution" in out
        assert "DRAM %" in out and "netcache %" in out

    def test_fig6_mem_stats(self, capsys):
        out = run_cli(capsys, "fig6", "--quick", "--mem-stats")
        assert "Memory-level hit attribution" in out
        assert "HC+LLA" in out and "L3 %" in out

    def test_fig6_without_flag_has_no_attribution(self, capsys):
        out = run_cli(capsys, "fig6", "--quick")
        assert "Memory-level hit attribution" not in out


class TestScenarioCli:
    def test_version(self, capsys):
        from repro._version import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_list_enumerates_scenarios_and_axes(self, capsys):
        out = run_cli(capsys, "list")
        assert "spatial-msg-size" in out and "queue_family" in out
        assert "Registered scenarios" in out and "Scenario axes" in out
        assert "repro run" in out

    def test_run_registered_name(self, capsys):
        out = run_cli(capsys, "run", "offload", "--quick")
        assert "bxi-like" in out and "4000" in out

    def test_run_scenario_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "tiny.json"
        path.write_text(json.dumps({
            "kind": "osu",
            "series": "{queue_family}",
            "x": "search_depth",
            "base": {"arch": "sandy-bridge", "link": "auto", "msg_bytes": 1,
                     "iterations": 2, "queue_family": "lla-2", "heated": False},
            "matrix": {"search_depth": [8, 64]},
        }), encoding="utf-8")
        out = run_cli(capsys, "run", str(path))
        assert "lla-2" in out and "64" in out

    def test_run_example_json(self, capsys):
        out = run_cli(capsys, "run", "examples/scenarios/fig6_quick.json")
        assert "HC+LLA" in out and "65536" in out

    def test_run_unknown_scenario_exits_2(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_bad_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope", encoding="utf-8")
        assert main(["run", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_run_seed_flag_overrides_file_seed(self, capsys):
        # --seed reaches the plan: points carry it (exercised via offload,
        # whose table output is seed-independent but must still run).
        out = run_cli(capsys, "run", "offload", "--quick", "--seed", "3")
        assert "software-only" in out

    def test_shared_flags_on_every_sweep_command(self):
        parser = build_parser()
        for cmd in ("fig4", "fig8", "heater-micro", "ablation", "offload"):
            args = parser.parse_args([cmd, "--quick", "--jobs", "2", "--retries",
                                      "1", "--on-error", "collect"])
            assert args.jobs == 2 and args.retries == 1 and args.on_error == "collect"
        args = parser.parse_args(["run", "offload", "--quick", "--jobs", "2",
                                  "--report", "r.json"])
        assert args.jobs == 2 and args.report == "r.json"

    def test_run_report_export(self, capsys, tmp_path):
        import json

        report = tmp_path / "report.json"
        run_cli(capsys, "run", "offload", "--quick", "--report", str(report))
        data = json.loads(report.read_text(encoding="utf-8"))
        assert data["total"] == 6


class TestTrafficCli:
    def test_parser_registered_with_shared_flags(self):
        parser = build_parser()
        args = parser.parse_args(["traffic", "--quick", "--jobs", "2",
                                  "--report", "t.json"])
        assert args.command == "traffic"
        assert args.jobs == 2 and args.report == "t.json"

    def test_list_shows_traffic_scenario_and_axes(self, capsys):
        out = run_cli(capsys, "list")
        assert "traffic-overload" in out and "traffic" in out
        for axis in ("arrival_rate", "zipf_alpha", "queue_capacity", "admission"):
            assert axis in out, f"axis {axis} missing from repro list"

    def test_traffic_quick_renders_overload_table(self, capsys):
        out = run_cli(capsys, "traffic", "--quick")
        assert "Open-loop overload" in out
        assert "offered load" in out
        for series in ("baseline", "HC", "LLA - 8", "HC+LLA - 8"):
            assert series in out

    def test_run_traffic_by_name_matches_subcommand(self, capsys):
        by_name = run_cli(capsys, "run", "traffic-overload", "--quick")
        direct = run_cli(capsys, "traffic", "--quick")
        assert by_name.splitlines()[:5] == direct.splitlines()[:5]


class TestServiceCli:
    def _tiny_scenario(self, tmp_path):
        import json

        doc = {
            "name": "tiny",
            "kind": "osu",
            "x": "msg_bytes",
            "base": {"arch": "sandy-bridge", "link": "auto", "depth": 16,
                     "iterations": 2},
            "matrix": {"msg_bytes": [1, 8]},
            "seed": 3,
        }
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        return path

    def test_parser_registers_service_commands(self):
        parser = build_parser()
        assert parser.parse_args(["serve", "--job-dir", "d", "--max-idle", "1"])
        assert parser.parse_args(["submit", "x.toml", "--job-dir", "d"])
        assert parser.parse_args(["status", "--job-dir", "d", "--json"])

    def test_submit_serve_status_roundtrip(self, capsys, tmp_path):
        import json

        scenario = self._tiny_scenario(tmp_path)
        jd = str(tmp_path / "jd")
        job_id = run_cli(capsys, "submit", str(scenario), "--job-dir", jd).strip()
        assert job_id.startswith("tiny-")
        out = run_cli(capsys, "status", "--job-dir", jd)
        assert "queued" in out
        run_cli(
            capsys, "serve", "--job-dir", jd, "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"), "--max-idle", "0.2",
            "--poll", "0.02",
        )
        doc = json.loads(run_cli(capsys, "status", "--job-dir", jd, "--json"))
        (job,) = doc["jobs"]
        assert job["job"] == job_id and job["state"] == "done"
        assert doc["service"]["service"]["executed"] == 2
        human = run_cli(capsys, "status", "--job-dir", jd)
        assert "done" in human and "store:" in human

    def test_serve_chaos_flags_parse_and_inject(self, capsys, tmp_path):
        scenario = self._tiny_scenario(tmp_path)
        jd = str(tmp_path / "jd")
        run_cli(capsys, "submit", str(scenario), "--job-dir", jd)
        import json

        run_cli(
            capsys, "serve", "--job-dir", jd, "--cache-dir",
            str(tmp_path / "cache"), "--max-idle", "0.2", "--poll", "0.02",
            "--inject-faults", "store-rot@0",
        )
        doc = json.loads(run_cli(capsys, "status", "--job-dir", jd, "--json"))
        assert doc["service"]["service"]["rot_injected"] == 1
        assert doc["service"]["injected_faults"] == ["store-rot@0"]

    def test_serve_bad_fault_spec_exits_2(self, capsys, tmp_path):
        assert main(["serve", "--job-dir", str(tmp_path / "jd"),
                     "--inject-faults", "nap@1", "--max-idle", "0.1"]) == 2
        assert "bad service fault" in capsys.readouterr().err

    def test_list_cache_dir_reports_store(self, capsys, tmp_path):
        from repro.exp import PointResult, PointSpec, ResultStore

        store = ResultStore(tmp_path / "cache")
        store.put(
            PointSpec.make("osu", "s", 1.0, seed=0, depth=1, msg_bytes=1),
            PointResult(y=1.0),
        )
        out = run_cli(capsys, "list", "--cache-dir", str(tmp_path / "cache"))
        assert "Result store" in out and "entries" in out


class TestEmptyPanelRendering:
    def test_render_panel_empty_sweep_prints_notice(self, capsys):
        import argparse

        from repro.analysis.series import Sweep
        from repro.cli import _render_panel

        _render_panel(
            Sweep(title="Figure X", xlabel="x", ylabel="y"),
            argparse.Namespace(),
            "empty",
        )
        out = capsys.readouterr().out
        assert "no points to render" in out
        assert "-" not in out  # no degenerate ruled table
