"""Smoke tests for the CLI: each command runs and prints the right shape."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("table1", "fig1", "layout", "heater-micro", "ablation", "list"):
            assert parser.parse_args([cmd] if cmd == "list" else [cmd, "--quick"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "table1" in out and "fig10" in out

    def test_layout(self, capsys):
        out = run_cli(capsys, "layout", "--quick")
        assert "PRQ" in out and "UMQ" in out
        assert "2" in out and "3" in out  # Figure 2's entries per line

    def test_table1_quick(self, capsys):
        out = run_cli(capsys, "table1", "--quick")
        assert "32x32" in out and "27pt" in out
        assert "6146" in out  # the largest list length of Table 1

    def test_fig1_single_motif(self, capsys):
        out = run_cli(capsys, "fig1", "--quick", "--motif", "halo3d")
        assert "halo3d" in out and "posted" in out and "unexpected" in out

    def test_heater_micro(self, capsys):
        out = run_cli(capsys, "heater-micro", "--quick")
        assert "sandy-bridge" in out and "broadwell" in out

    def test_ablation_quick(self, capsys):
        out = run_cli(capsys, "ablation", "--quick")
        assert "CAT partition" in out and "hot caching" in out


class TestNewCommands:
    def test_offload_quick(self, capsys):
        out = run_cli(capsys, "offload", "--quick")
        assert "bxi-like" in out and "psm2-like" in out and "software-only" in out

    def test_chart_flag(self, capsys):
        out = run_cli(capsys, "fig6", "--quick", "--chart")
        assert "o=baseline" in out  # chart legend present
        assert "HC+LLA" in out

    def test_validate_registered(self):
        parser = build_parser()
        args = parser.parse_args(["validate", "--quick"])
        assert args.command == "validate"

    def test_mem_stats_flag_registered(self):
        parser = build_parser()
        for cmd in ("fig4", "fig5", "fig6", "fig7", "ablation"):
            args = parser.parse_args([cmd, "--quick", "--mem-stats"])
            assert args.mem_stats is True

    def test_ablation_mem_stats(self, capsys):
        out = run_cli(capsys, "ablation", "--quick", "--mem-stats")
        assert "Memory-level hit attribution" in out
        assert "DRAM %" in out and "netcache %" in out

    def test_fig6_mem_stats(self, capsys):
        out = run_cli(capsys, "fig6", "--quick", "--mem-stats")
        assert "Memory-level hit attribution" in out
        assert "HC+LLA" in out and "L3 %" in out

    def test_fig6_without_flag_has_no_attribution(self, capsys):
        out = run_cli(capsys, "fig6", "--quick")
        assert "Memory-level hit attribution" not in out
