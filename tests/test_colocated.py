"""Tests for the co-located LLC-pressure study (fast, tiny-cache variant)."""

import pytest

from repro.arch.spec import ArchSpec
from repro.bench.colocated import ColocatedPoint, run_colocated_study
from repro.errors import ConfigurationError

#: A scaled-down socket so eviction pressure appears with tiny working sets:
#: 256 KiB LLC, full prefetch stack, 8 cores.
TINY = ArchSpec(
    name="tiny",
    ghz=2.0,
    cores_per_socket=8,
    l1_size=4 * 1024,
    l1_assoc=4,
    l2_size=16 * 1024,
    l2_assoc=4,
    l3_size=256 * 1024,
    l3_assoc=16,
    l3_latency=30.0,
    dram_latency=200.0,
)

KW = dict(
    rank_counts=(1, 4),
    depth=256,
    working_set_bytes=128 * 1024,  # 4 ranks x 128 KiB = 512 KiB > 256 KiB L3
    iterations=1,
)


class TestStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return run_colocated_study(TINY, **KW)

    def test_grid_shape(self, points):
        assert len(points) == 6  # 3 mechanisms x 2 rank counts
        assert all(isinstance(p, ColocatedPoint) for p in points)

    def test_unprotected_blows_up_past_capacity(self, points):
        by = {(p.mechanism, p.ranks): p.cycles_per_search for p in points}
        assert by[("none", 4)] > 1.5 * by[("none", 1)]

    def test_partition_nearly_flat(self, points):
        # The toy cache has only 256 sets, so a few sets locally exceed
        # their reserved share and leak; at real LLC geometry the partition
        # is exactly flat (see bench_colocated_pressure.py).
        by = {(p.mechanism, p.ranks): p.cycles_per_search for p in points}
        assert by[("cat-partition", 4)] <= 1.25 * by[("cat-partition", 1)]

    def test_partition_beats_unprotected_under_pressure(self, points):
        by = {(p.mechanism, p.ranks): p.cycles_per_search for p in points}
        assert by[("cat-partition", 4)] < by[("none", 4)]

    def test_hot_caching_defends_partially(self, points):
        by = {(p.mechanism, p.ranks): p.cycles_per_search for p in points}
        assert by[("hot-caching", 4)] < by[("none", 4)]

    def test_core_budget_enforced(self):
        with pytest.raises(ConfigurationError):
            run_colocated_study(TINY, rank_counts=(16,), iterations=1)

    def test_single_mechanism_selection(self):
        points = run_colocated_study(
            TINY, mechanisms=("none",), rank_counts=(1,), depth=64,
            working_set_bytes=32 * 1024, iterations=1,
        )
        assert [p.mechanism for p in points] == ["none"]
