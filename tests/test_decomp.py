"""Tests for the Table 1 substrate: exact combinatorics + measured depths."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.decomp import (
    BlockDecomposition,
    STENCILS,
    get_stencil,
    run_decomposition,
    run_trials,
)
from repro.decomp.bench import TABLE1_ROWS, table1
from repro.errors import ConfigurationError

#: Every row of the paper's Table 1 (tr, ts, length, paper's search depth).
PAPER_TABLE1 = {
    ((32, 32), "5pt"): (124, 128, 128, 32.51),
    ((64, 32), "5pt"): (188, 192, 192, 48.22),
    ((32, 32), "9pt"): (124, 132, 380, 85.18),
    ((64, 32), "9pt"): (188, 196, 572, 127.24),
    ((8, 8, 4), "7pt"): (184, 256, 256, 65.85),
    ((1, 1, 128), "7pt"): (128, 514, 514, 132.27),
    ((1, 1, 256), "7pt"): (256, 1026, 1026, 259.08),
    ((8, 8, 4), "27pt"): (184, 344, 2072, 410.02),
    ((1, 1, 128), "27pt"): (128, 1042, 3074, 596.85),
    ((1, 1, 256), "27pt"): (256, 2066, 6146, 1294.49),
}


class TestStencils:
    def test_point_counts(self):
        assert STENCILS["5pt"].npoints == 5
        assert STENCILS["9pt"].npoints == 9
        assert STENCILS["7pt"].npoints == 7
        assert STENCILS["27pt"].npoints == 27

    def test_offsets_exclude_origin(self):
        for stencil in STENCILS.values():
            assert all(any(o) for o in stencil.offsets)

    def test_offsets_unique(self):
        for stencil in STENCILS.values():
            assert len(set(stencil.offsets)) == len(stencil.offsets)

    def test_unknown_stencil(self):
        with pytest.raises(ConfigurationError):
            get_stencil("13pt")


class TestCombinatorics:
    @pytest.mark.parametrize("dims,stencil", list(PAPER_TABLE1))
    def test_table1_counts_exact(self, dims, stencil):
        """tr / ts / length must equal the paper's Table 1 exactly."""
        counts = BlockDecomposition(dims).counts(get_stencil(stencil))
        tr, ts, length, _ = PAPER_TABLE1[(dims, stencil)]
        assert counts.receiving_threads == tr
        assert counts.sending_threads == ts
        assert counts.list_length == length

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockDecomposition((4, 4)).counts(get_stencil("7pt"))

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            BlockDecomposition((0, 4))

    @given(st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_5pt_closed_forms(self, nx, ny):
        counts = BlockDecomposition((nx, ny)).counts(get_stencil("5pt"))
        assert counts.list_length == 2 * (nx + ny)
        assert counts.sending_threads == 2 * (nx + ny)
        assert counts.receiving_threads == nx * ny - max(0, (nx - 2)) * max(0, (ny - 2))

    @given(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_7pt_closed_forms(self, nx, ny, nz):
        counts = BlockDecomposition((nx, ny, nz)).counts(get_stencil("7pt"))
        assert counts.list_length == 2 * (nx * ny + ny * nz + nx * nz)

    @given(st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_9pt_sender_ring(self, nx, ny):
        counts = BlockDecomposition((nx, ny)).counts(get_stencil("9pt"))
        # Distinct external cells form the one-cell ring around the block.
        assert counts.sending_threads == (nx + 2) * (ny + 2) - nx * ny

    def test_pairs_by_thread_consistency(self):
        block = BlockDecomposition((4, 4))
        stencil = get_stencil("9pt")
        grouped = block.pairs_by_thread(stencil)
        total = sum(len(v) for v in grouped.values())
        assert total == block.counts(stencil).list_length


class TestMeasuredDepths:
    def test_every_message_matches(self):
        depth = run_decomposition((8, 8), "5pt", np.random.default_rng(0))
        assert depth > 0

    @pytest.mark.parametrize("dims,stencil", [((32, 32), "5pt"), ((8, 8, 4), "7pt")])
    def test_depth_in_paper_band(self, dims, stencil):
        """Measured mean search depth within 30% of the paper's value."""
        result = run_trials(dims, stencil, trials=3, seed=0)
        paper_depth = PAPER_TABLE1[(dims, stencil)][3]
        assert result.mean_search_depth == pytest.approx(paper_depth, rel=0.30)

    def test_depth_scales_with_length(self):
        small = run_trials((8, 8), "5pt", trials=2).mean_search_depth
        large = run_trials((16, 16), "5pt", trials=2).mean_search_depth
        assert large > small

    def test_depth_fraction_band(self):
        """Random interleaving puts mean depth at ~0.2-0.3x list length."""
        result = run_trials((32, 32), "9pt", trials=3)
        frac = result.mean_search_depth / result.counts.list_length
        assert 0.15 < frac < 0.35

    def test_trials_reduce_to_mean_std(self):
        result = run_trials((8, 8), "5pt", trials=4, seed=1)
        assert result.trials == 4
        assert result.depth_std >= 0

    def test_deterministic_given_seed(self):
        a = run_trials((8, 8), "5pt", trials=2, seed=3).mean_search_depth
        b = run_trials((8, 8), "5pt", trials=2, seed=3).mean_search_depth
        assert a == b

    def test_as_row(self):
        result = run_trials((8, 8), "5pt", trials=1)
        row = result.as_row()
        assert row[0] == "8x8" and row[1] == "5pt"


class TestTable1Driver:
    def test_row_list_matches_paper(self):
        assert set(TABLE1_ROWS) == set(PAPER_TABLE1)

    def test_subset_run(self):
        rows = table1(trials=1, rows=[((8, 8), "5pt")])
        assert len(rows) == 1
