"""Determinism regression: pinned cycle/counter traces for fig4/fig6 points.

These values were captured from the seed implementation (the scalar
per-line ``access`` loop) and must never drift: any refactor of the memory
hot path — batching, recency restructuring, stats deferral — has to
reproduce the seed's float accumulation order and RNG consumption exactly.
A failure here means the pipeline changed *simulated physics*, not just
wall-clock speed.

The cycle values are compared with ``repr`` equality (bit-identical
floats), not ``approx``: "close" is exactly the bug this test exists to
catch.
"""

import pytest

from repro.arch import SANDY_BRIDGE
from repro.bench.osu import OsuConfig, _OsuSession
from repro.matching.port import SCAN_BATCH_ENV
from repro.mem.kernel import ALL_KERNELS
from repro.net.link import QLOGIC_QDR

#: Every pinned trace must reproduce under every kernel backend: the SoA
#: slab kernel and the reference dict kernel are required to be
#: bit-identical, so they share one set of pinned values.
KERNELS = sorted(ALL_KERNELS)

#: ... and under both queue-scan spellings: batched scan runs must charge
#: exactly what the per-slot loads charged (same pinned values again).
SCAN_MODES = ("on", "off")

#: Traces captured at the seed commit: (queue_family, heated, msg_bytes)
#: -> per-message match cycles, final engine clock, and hierarchy counters
#: after 5 messages at search depth 512, seed 0.
PINNED = {
    "fig4_spatial_snb_lla8": {
        "family": "lla-8",
        "heated": False,
        "msg_bytes": 1024,
        "cycles": ["13336.0"] * 5,
        "clock": "67979.0",
        "demand_accesses": 3530,
        "levels": {
            "l1.0": {"hits": 2885, "misses": 645, "evictions": 0},
            "l2.0": {"hits": 635, "misses": 10, "evictions": 0},
            "l3": {"hits": 0, "misses": 10, "evictions": 0},
        },
        "loads": 2890,
        "load_cycles": "66670.0",
    },
    "fig6_temporal_snb_hc": {
        "family": "baseline",
        "heated": True,
        "msg_bytes": 4096,
        "cycles": ["25548.0"] * 5,
        "clock": "205546.0",
        "demand_accesses": 3805,
        "levels": {
            "l1.0": {"hits": 2220, "misses": 1585, "evictions": 696},
            "l2.0": {"hits": 970, "misses": 615, "evictions": 0},
            "l3": {"hits": 19771, "misses": 2895, "evictions": 0},
        },
        "loads": 2565,
        "load_cycles": "62130.0",
    },
}


def run_trace(pin, kernel=None):
    cfg = OsuConfig(
        arch=SANDY_BRIDGE,
        link=QLOGIC_QDR,
        queue_family=pin["family"],
        heated=pin["heated"],
        msg_bytes=pin["msg_bytes"],
        search_depth=512,
        iterations=3,
        seed=0,
        mem_kernel=kernel,
    )
    session = _OsuSession(cfg)
    session.prepopulate()
    cycles = [session.one_message(pin["msg_bytes"]) for _ in range(5)]
    return session, cycles


def assert_trace_matches(pin, kernel=None):
    session, cycles = run_trace(pin, kernel)
    assert [repr(c) for c in cycles] == pin["cycles"]
    assert repr(session.engine.clock.now) == pin["clock"]
    assert repr(session.engine.load_cycles) == pin["load_cycles"]
    assert session.engine.loads == pin["loads"]
    stats = session.hier.stats()
    assert stats["demand_accesses"] == pin["demand_accesses"]
    for level, expected in pin["levels"].items():
        got = {k: stats[level][k] for k in expected}
        assert got == expected, f"{level}: {got} != {expected}"


@pytest.mark.parametrize("scan_batch", SCAN_MODES)
@pytest.mark.parametrize("kernel", KERNELS)
def test_fig4_spatial_snb_lla8_trace_pinned(kernel, scan_batch, monkeypatch):
    monkeypatch.setenv(SCAN_BATCH_ENV, scan_batch)
    assert_trace_matches(PINNED["fig4_spatial_snb_lla8"], kernel)


@pytest.mark.parametrize("scan_batch", SCAN_MODES)
@pytest.mark.parametrize("kernel", KERNELS)
def test_fig6_temporal_snb_hc_trace_pinned(kernel, scan_batch, monkeypatch):
    monkeypatch.setenv(SCAN_BATCH_ENV, scan_batch)
    assert_trace_matches(PINNED["fig6_temporal_snb_hc"], kernel)


def test_level_stats_consistent_with_hierarchy_counters():
    """The engine's attribution must account for every traversed line."""
    session, _ = run_trace(PINNED["fig6_temporal_snb_hc"])
    ls = session.engine.level_stats
    assert ls.loads == session.engine.loads
    # Each traversed line is attributed to exactly one serving level.
    assert (
        ls.netcache_hits + ls.l1_hits + ls.l2_hits + ls.l3_hits + ls.dram_fills
        == ls.lines
    )
    # Hot caching is visible: the L3 serves a large share of the lines.
    assert ls.l3_hits > 0
