"""Tests for the declarative experiment-plan layer (repro.exp.plan)."""

import pytest

from repro.errors import ConfigurationError
from repro.exp import ExperimentPlan, PointResult, PointSpec, derive_seed
from repro.mem.result import LevelStats


def stats(loads=1, lines=4, l1=2, dram=2, cycles=10.0):
    out = LevelStats()
    out.loads = loads
    out.lines = lines
    out.l1_hits = l1
    out.dram_fills = dram
    out.cycles = cycles
    return out


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "baseline", 64) == derive_seed(7, "baseline", 64)

    def test_sensitive_to_every_part(self):
        base = derive_seed(7, "baseline", 64)
        assert derive_seed(8, "baseline", 64) != base
        assert derive_seed(7, "lla-2", 64) != base
        assert derive_seed(7, "baseline", 65) != base

    def test_31_bit_range(self):
        for root in range(50):
            s = derive_seed(root, "x")
            assert 0 <= s < 2**31


class TestPointSpec:
    def test_make_sorts_and_freezes_params(self):
        spec = PointSpec.make("osu", "baseline", 1.0, seed=3, zeta=1, alpha="a")
        assert spec.params == (("alpha", "a"), ("zeta", 1))
        assert spec.kwargs == {"alpha": "a", "zeta": 1}
        # Frozen + hashable: usable as a dict key and safe to share.
        assert hash(spec) == hash(
            PointSpec.make("osu", "baseline", 1.0, seed=3, alpha="a", zeta=1)
        )

    def test_sequences_become_tuples(self):
        spec = PointSpec.make("osu", "s", 0.0, sizes=[32, 64])
        assert spec.kwargs["sizes"] == (32, 64)

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ConfigurationError):
            PointSpec.make("osu", "s", 0.0, cfg={"nested": 1})
        with pytest.raises(ConfigurationError):
            PointSpec.make("osu", "s", 0.0, fn=lambda: None)

    def test_content_key_stable_across_kwarg_order(self):
        a = PointSpec.make("osu", "s", 1.0, seed=2, depth=64, msg_bytes=8)
        b = PointSpec.make("osu", "s", 1.0, seed=2, msg_bytes=8, depth=64)
        assert a.content_key() == b.content_key()

    def test_content_key_ignores_presentation(self):
        # series/x say where the result lands in the figure, not what is
        # computed — two panels sharing a config share a cache entry.
        a = PointSpec.make("osu", "panel a", 1.0, seed=2, depth=64)
        b = PointSpec.make("osu", "panel c", 9.0, seed=2, depth=64)
        assert a.content_key() == b.content_key()

    def test_content_key_sensitive_to_computation(self):
        base = PointSpec.make("osu", "s", 1.0, seed=2, depth=64)
        assert PointSpec.make("osu", "s", 1.0, seed=3, depth=64).content_key() != base.content_key()
        assert PointSpec.make("osu", "s", 1.0, seed=2, depth=65).content_key() != base.content_key()
        assert PointSpec.make("app", "s", 1.0, seed=2, depth=64).content_key() != base.content_key()


class TestReduce:
    def plan(self):
        plan = ExperimentPlan(title="T", xlabel="depth", ylabel="MiBps")
        for label in ("baseline", "LLA"):
            for x in (1.0, 64.0):
                plan.add_point("osu", label, x, seed=0, depth=int(x))
        return plan

    def test_series_labels_in_plan_order(self):
        assert self.plan().series_labels() == ["baseline", "LLA"]

    def test_reduce_folds_in_plan_order(self):
        plan = self.plan()
        results = [PointResult(y=float(i), yerr=0.1 * i) for i in range(len(plan))]
        sweep = plan.reduce(results)
        assert sweep.labels() == ["baseline", "LLA"]
        assert sweep.series["baseline"].x == [1.0, 64.0]
        assert sweep.series["baseline"].y == [0.0, 1.0]
        assert sweep.series["LLA"].y == [2.0, 3.0]
        assert sweep.series["LLA"].yerr == [pytest.approx(0.2), pytest.approx(0.3)]

    def test_reduce_merges_mem_stats_per_series(self):
        plan = self.plan()
        results = [PointResult(y=1.0, mem_stats=stats(loads=1, lines=4)) for _ in range(4)]
        sweep = plan.reduce(results)
        merged = sweep.meta["mem_stats"]
        assert set(merged) == {"baseline", "LLA"}
        assert merged["baseline"].loads == 2
        assert merged["baseline"].lines == 8
        # The accumulators are copies, not the producers' objects.
        assert merged["baseline"] is not results[0].mem_stats

    def test_reduce_without_mem_stats_keeps_bare_meta(self):
        plan = self.plan()
        sweep = plan.reduce([PointResult(y=1.0) for _ in range(4)])
        assert sweep.meta == {}

    def test_reduce_rejects_length_mismatch(self):
        plan = self.plan()
        with pytest.raises(ConfigurationError):
            plan.reduce([PointResult(y=1.0)])

    def test_reduce_rejects_missing_result(self):
        plan = self.plan()
        results = [PointResult(y=1.0), None, PointResult(y=1.0), PointResult(y=1.0)]
        with pytest.raises(ConfigurationError):
            plan.reduce(results)

    def test_elapsed_not_part_of_equality(self):
        # Cached results lose their original timing; they must still compare
        # equal to fresh ones so equivalence checks pass.
        assert PointResult(y=1.0, elapsed_s=0.5) == PointResult(y=1.0, elapsed_s=9.0)
