"""Tests for the plan runner: parallel == serial, store reuse, dedup.

The equivalence tests run real (reduced) figure grids: Figure 4b's spatial
line-up and Figure 6a's temporal line-up on Sandy Bridge, small enough to
finish in seconds but exercising the same producers the CLI uses.
"""

import pytest

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_spatial_search_length, plan_temporal_msg_size
from repro.errors import ConfigurationError, PointExecutionError
from repro.exp import ExperimentPlan, PointResult, Runner, ResultStore, register_producer


def quick_fig4_plan():
    return plan_spatial_search_length(
        SANDY_BRIDGE, msg_bytes=1, depths=(1, 16, 64), iterations=2, seed=0
    )


def quick_fig6_plan():
    return plan_temporal_msg_size(
        SANDY_BRIDGE, depth=64, msg_sizes=(8, 1024), iterations=2, seed=0
    )


def snapshot_mem_stats(sweep):
    return {
        label: stats.snapshot()
        for label, stats in sweep.meta.get("mem_stats", {}).items()
    }


class TestParallelEquivalence:
    @pytest.mark.parametrize("make_plan", [quick_fig4_plan, quick_fig6_plan])
    def test_jobs4_repr_identical_to_serial(self, make_plan):
        serial = Runner(jobs=1).run_sweep(make_plan())
        parallel = Runner(jobs=4).run_sweep(make_plan())
        assert repr(parallel) == repr(serial)
        for label in serial.labels():
            assert parallel.series[label].x == serial.series[label].x
            assert parallel.series[label].y == serial.series[label].y
            assert parallel.series[label].yerr == serial.series[label].yerr
        assert snapshot_mem_stats(parallel) == snapshot_mem_stats(serial)

    def test_results_arrive_in_plan_order(self):
        plan = quick_fig6_plan()
        runner = Runner(jobs=4)
        results = runner.run(plan)
        assert len(results) == len(plan)
        serial = Runner(jobs=1).run(plan)
        assert [(r.y, r.yerr, r.extras) for r in results] == [
            (r.y, r.yerr, r.extras) for r in serial
        ]
        assert [r.mem_stats.snapshot() for r in results] == [
            r.mem_stats.snapshot() for r in serial
        ]
        assert runner.last_stats.executed == len(plan)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Runner(jobs=0)


class TestStoreReuse:
    def test_warm_store_performs_zero_simulations(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = Runner(jobs=1, store=store)
        cold_sweep = cold.run_sweep(quick_fig4_plan())
        assert cold.last_stats.executed == len(quick_fig4_plan())

        warm = Runner(jobs=1, store=store)
        warm_sweep = warm.run_sweep(quick_fig4_plan())
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cached == len(quick_fig4_plan())
        assert repr(warm_sweep) == repr(cold_sweep)
        assert snapshot_mem_stats(warm_sweep) == snapshot_mem_stats(cold_sweep)

    def test_interrupted_run_resumes(self, tmp_path):
        # Pre-populate part of the grid, as an interrupted sweep would have.
        store = ResultStore(tmp_path)
        plan = quick_fig6_plan()
        half = plan.points[: len(plan) // 2]
        partial = ExperimentPlan(title=plan.title, points=list(half))
        Runner(store=store).run(partial)

        runner = Runner(store=store)
        runner.run(plan)
        assert runner.last_stats.cached == len(half)
        assert runner.last_stats.executed == len(plan) - len(half)


class TestDedup:
    def test_identical_points_execute_once(self):
        calls = []

        def producer(kwargs, seed):
            calls.append(kwargs["v"])
            return PointResult(y=float(kwargs["v"]))

        register_producer("dedup-test", producer)
        plan = ExperimentPlan(title="D")
        # Two panels sharing one corner config: same content, different cell.
        plan.add_point("dedup-test", "panel a", 1.0, seed=0, v=5)
        plan.add_point("dedup-test", "panel c", 9.0, seed=0, v=5)
        plan.add_point("dedup-test", "panel a", 2.0, seed=0, v=6)

        runner = Runner()
        results = runner.run(plan)
        assert len(calls) == 2
        assert runner.last_stats.deduped == 1
        assert results[0].y == results[1].y == 5.0
        assert results[2].y == 6.0


class TestProgress:
    def test_callback_sees_every_point(self):
        seen = []

        def progress(done, total, spec, result, cached):
            seen.append((done, total, spec.series, cached))

        plan = quick_fig6_plan()
        Runner(progress=progress).run(plan)
        assert len(seen) == len(plan)
        assert seen[-1][0] == len(plan)
        assert all(total == len(plan) for _, total, _, _ in seen)
        assert not any(cached for _, _, _, cached in seen)


class TestErrorPropagation:
    def test_worker_exception_reaches_caller(self):
        def producer(kwargs, seed):
            raise ValueError("boom")

        register_producer("error-test", producer)
        plan = ExperimentPlan(title="E")
        plan.add_point("error-test", "s", 0.0)
        with pytest.raises(PointExecutionError, match="boom") as excinfo:
            Runner().run(plan)
        # The causal chain reaches the worker's own exception.
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert excinfo.value.spec is plan.points[0]
        assert excinfo.value.attempts == 1

    def test_unknown_kind_rejected(self):
        plan = ExperimentPlan(title="U")
        plan.add_point("no-such-kind", "s", 0.0)
        with pytest.raises(PointExecutionError) as excinfo:
            Runner().run(plan)
        assert isinstance(excinfo.value.__cause__, ConfigurationError)

    def test_configuration_errors_are_not_retried(self):
        plan = ExperimentPlan(title="U")
        plan.add_point("no-such-kind", "s", 0.0)
        runner = Runner(retries=5, backoff_s=0.0)
        with pytest.raises(PointExecutionError) as excinfo:
            runner.run(plan)
        assert excinfo.value.attempts == 1
        assert runner.last_stats.retried == 0

    def test_fail_fast_finalizes_stats(self):
        def producer(kwargs, seed):
            if kwargs["v"] == 2:
                raise ValueError("poison")
            return PointResult(y=float(kwargs["v"]))

        register_producer("finalize-test", producer)
        plan = ExperimentPlan(title="F")
        for v in range(4):
            plan.add_point("finalize-test", "s", float(v), v=v)
        runner = Runner()
        with pytest.raises(PointExecutionError):
            runner.run(plan)
        # Accounting is finalized before the exception propagates.
        assert runner.last_stats.elapsed_s > 0.0
        assert runner.last_stats.executed == 2
        # The report still names the point that killed the run.
        assert [f.index for f in runner.last_report.failures] == [2]
        assert runner.last_report.attempts[-1].outcome == "error"

    def test_keyboard_interrupt_finalizes_and_flushes(self, tmp_path):
        def producer(kwargs, seed):
            if kwargs["v"] == 1:
                raise KeyboardInterrupt()
            return PointResult(y=float(kwargs["v"]))

        register_producer("interrupt-test", producer)
        plan = ExperimentPlan(title="K")
        for v in range(3):
            plan.add_point("interrupt-test", "s", float(v), v=v)
        store = ResultStore(tmp_path)
        runner = Runner(store=store)
        with pytest.raises(KeyboardInterrupt):
            runner.run(plan)
        # The completed point was flushed to the store and stats finalized,
        # so a --resume rerun starts from it instead of discarding it.
        assert store.puts == 1
        assert runner.last_stats.elapsed_s > 0.0
        resumed = Runner(store=store)
        results = resumed.run(
            ExperimentPlan(title="K", points=[plan.points[0], plan.points[2]])
        )
        assert resumed.last_stats.cached == 1
        assert [r.y for r in results] == [0.0, 2.0]


class TestProgressIsolation:
    def test_raising_callback_cannot_abort_sweep(self):
        calls = []

        def bad_progress(done, total, spec, result, cached):
            calls.append(done)
            raise RuntimeError("presentation bug")

        plan = quick_fig6_plan()
        runner = Runner(progress=bad_progress)
        with pytest.warns(RuntimeWarning, match="progress callback raised"):
            results = runner.run(plan)
        # Callback fired once, was disabled, and the sweep still completed.
        assert calls == [1]
        assert all(r is not None for r in results)
        assert runner.last_stats.executed == len(plan)


class TestBackoffDelay:
    """Property tests for the shared deterministic backoff schedule."""

    def _keys(self):
        return [s.content_key() for s in quick_fig4_plan().points]

    def test_deterministic_per_key_and_attempt(self):
        from repro.exp import backoff_delay

        for key in self._keys():
            for attempt in range(5):
                a = backoff_delay(key, attempt, 0.05, 2.0)
                b = backoff_delay(key, attempt, 0.05, 2.0)
                assert a == b

    def test_non_decreasing_in_attempt(self):
        from repro.exp import backoff_delay

        for key in self._keys():
            delays = [backoff_delay(key, a, 0.05, 2.0) for a in range(8)]
            assert delays == sorted(delays)

    def test_capped_and_positive(self):
        from repro.exp import backoff_delay

        for key in self._keys():
            for attempt in range(10):
                d = backoff_delay(key, attempt, 0.05, 0.3)
                assert 0.0 < d <= 0.3

    def test_zero_base_disables_backoff(self):
        from repro.exp import backoff_delay

        assert backoff_delay("anything", 3, 0.0, 2.0) == 0.0

    def test_jitter_varies_across_keys(self):
        from repro.exp import backoff_delay

        first = {backoff_delay(k, 0, 0.05, 2.0) for k in self._keys()}
        assert len(first) > 1  # same attempt, different keys: jittered apart

    def test_runner_delegates_to_shared_schedule(self):
        from repro.exp import backoff_delay

        runner = Runner(retries=2, backoff_s=0.05, backoff_cap_s=0.4)
        spec = quick_fig6_plan().points[0]
        assert runner._backoff_delay(spec, 1) == backoff_delay(
            spec.content_key(), 1, 0.05, 0.4
        )

    def test_retry_leaves_surviving_points_bit_identical(self):
        """Regression: retrying a point must not perturb anyone's RNG —
        the retried run is bit-identical to an undisturbed serial run."""
        from repro.faults import FaultPlan

        plan = quick_fig6_plan()
        want = repr(Runner(jobs=1).run_sweep(quick_fig6_plan()))
        runner = Runner(
            retries=1,
            backoff_s=0.001,
            fault_plan=FaultPlan.parse("raise@2:1"),
        )
        sweep = runner.run_sweep(plan)
        assert runner.last_report.retried == 1
        assert repr(sweep) == want


class TestReportSchema:
    def test_to_dict_carries_schema(self):
        runner = Runner()
        runner.run(quick_fig6_plan())
        doc = runner.last_report.to_dict()
        from repro.exp import REPORT_SCHEMA

        assert doc["schema"] == REPORT_SCHEMA

    def test_json_roundtrip_preserves_render(self):
        """to_json -> parse -> from_dict -> render is the --report file
        contract: an archived report re-renders exactly."""
        import json as jsonlib

        from repro.exp.runner import RunReport

        plan = quick_fig4_plan()
        runner = Runner(jobs=2)
        runner.run(plan)
        original = runner.last_report
        restored = RunReport.from_dict(jsonlib.loads(original.to_json()))
        assert restored.render() == original.render()
        assert restored.to_dict() == original.to_dict()

    def test_roundtrip_with_failures_and_attempts(self):
        import json as jsonlib

        from repro.exp.runner import RunReport
        from repro.faults import FaultPlan

        plan = quick_fig6_plan()
        runner = Runner(
            retries=1, backoff_s=0.001, on_error="collect",
            fault_plan=FaultPlan.parse("raise@1:2"),
        )
        runner.run(plan)
        original = runner.last_report
        assert original.failures  # the injected point exhausted retries
        restored = RunReport.from_dict(jsonlib.loads(original.to_json()))
        assert restored.render() == original.render()
        assert [f.message for f in restored.failures] == [
            f.message for f in original.failures
        ]
        assert [a.outcome for a in restored.attempts] == [
            a.outcome for a in original.attempts
        ]

    def test_newer_schema_is_refused(self):
        from repro.exp import REPORT_SCHEMA
        from repro.exp.runner import RunReport

        with pytest.raises(ConfigurationError, match="newer than supported"):
            RunReport.from_dict({"schema": REPORT_SCHEMA + 1})

    def test_unknown_fields_are_ignored(self):
        from repro.exp.runner import RunReport

        report = RunReport.from_dict({"total": 3, "some_future_field": True})
        assert report.total == 3


class TestReportRenderEdgeCases:
    def test_zero_point_plan_renders_empty_notice(self):
        runner = Runner()
        runner.run(ExperimentPlan(title="E"))
        text = runner.last_report.render()
        assert "empty plan" in text
        assert "0 failed" not in text

    def test_all_cached_run_renders_cache_notice(self, tmp_path):
        plan = quick_fig6_plan()
        store = ResultStore(tmp_path)
        Runner(store=store).run(plan)
        warm = Runner(store=store)
        warm.run(quick_fig6_plan())
        text = warm.last_report.render()
        assert "all served from cache" in text
        assert f"{len(plan)} cached" in text
        assert "0 failed" not in text

    def test_normal_run_keeps_accounting_line(self):
        runner = Runner()
        runner.run(quick_fig6_plan())
        assert "executed" in runner.last_report.render()
