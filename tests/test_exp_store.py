"""Tests for the content-addressed result store (repro.exp.store)."""

from repro.exp import PointResult, PointSpec, ResultStore, default_salt
from repro.mem.result import LevelStats


def spec(**overrides):
    params = dict(depth=64, msg_bytes=8)
    params.update(overrides.pop("params", {}))
    defaults = dict(kind="osu", series="baseline", x=1.0, seed=2)
    defaults.update(overrides)
    return PointSpec.make(
        defaults["kind"], defaults["series"], defaults["x"], seed=defaults["seed"], **params
    )


def result_with_stats():
    ms = LevelStats()
    ms.loads = 3
    ms.lines = 12
    ms.l1_hits = 7
    ms.l3_hits = 2
    ms.dram_fills = 3
    ms.cycles = 480.5
    return PointResult(
        y=123.25, yerr=4.5, mem_stats=ms, extras={"latency_us": 1.5}, elapsed_s=0.25
    )


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(tmp_path)
        original = result_with_stats()
        store.put(spec(), original)
        restored = store.get(spec())
        assert (restored.y, restored.yerr) == (original.y, original.yerr)
        assert restored.mem_stats.snapshot() == original.mem_stats.snapshot()
        assert restored.extras == {"latency_us": 1.5}
        assert restored.elapsed_s == original.elapsed_s

    def test_none_mem_stats_roundtrips(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        assert store.get(spec()).mem_stats is None

    def test_presentation_does_not_split_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(series="panel a", x=1.0), PointResult(y=7.0))
        hit = store.get(spec(series="panel c", x=9.0))
        assert hit is not None and hit.y == 7.0
        assert len(store) == 1


class TestMisses:
    def test_absent_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(spec()) is None
        assert store.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        store.path_for(spec()).write_text("{not json", encoding="utf-8")
        assert store.get(spec()) is None

    def test_foreign_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        store.path_for(spec()).write_text('{"unrelated": true}', encoding="utf-8")
        assert store.get(spec()) is None


class TestIntegrity:
    def test_flipped_byte_fails_checksum_and_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), result_with_stats())
        assert store.corrupt(spec())
        assert store.get(spec()) is None
        assert store.quarantined == 1
        (corrupt_path,) = store.quarantined_paths
        assert corrupt_path.suffix == ".corrupt"
        assert corrupt_path.exists()
        # The slot is free again: a rewrite heals the store.
        store.put(spec(), result_with_stats())
        assert store.get(spec()) is not None

    def test_truncated_entry_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        path = store.path_for(spec())
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.get(spec()) is None
        assert store.quarantined == 1

    def test_missing_checksum_field_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        import json

        path = store.path_for(spec())
        doc = json.loads(path.read_text(encoding="utf-8"))
        del doc["sha256"]
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.get(spec()) is None
        assert store.quarantined == 1

    def test_timing_fields_are_not_checksummed(self, tmp_path):
        # elapsed_s is noise, not physics: editing it must not invalidate.
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0, elapsed_s=0.5))
        import json

        path = store.path_for(spec())
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["elapsed_s"] = 99.0
        path.write_text(json.dumps(doc), encoding="utf-8")
        hit = store.get(spec())
        assert hit is not None and hit.elapsed_s == 99.0
        assert store.quarantined == 0

    def test_corrupt_on_absent_entry_is_false(self, tmp_path):
        assert not ResultStore(tmp_path).corrupt(spec())


class TestSalting:
    def test_salt_isolates_entries(self, tmp_path):
        old = ResultStore(tmp_path, salt="repro-0.1/store-1")
        new = ResultStore(tmp_path, salt="repro-0.2/store-1")
        old.put(spec(), PointResult(y=1.0))
        # Same directory, different code version: stale physics is a miss.
        assert new.get(spec()) is None
        assert old.get(spec()) is not None

    def test_default_salt_carries_package_version(self):
        from repro._version import __version__

        assert __version__ in default_salt()


class TestAccounting:
    def test_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(spec())
        store.put(spec(), PointResult(y=1.0))
        store.get(spec())
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)

    def test_len_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        store.put(spec(seed=2), PointResult(y=2.0))
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get(spec(seed=1)) is None

    def test_len_and_clear_cover_quarantine_and_stale_tmp(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        store.put(spec(seed=2), PointResult(y=2.0))
        # Quarantine one entry, and fake a temp file orphaned by a killed
        # writer: both are store state that len/clear must account for.
        store.corrupt(spec(seed=1))
        store.get(spec(seed=1))
        assert store.quarantined == 1
        shard = store.path_for(spec(seed=2)).parent
        (shard / "orphan.tmp").write_text("partial write", encoding="utf-8")
        assert len(store) == 3  # 1 live + 1 quarantined + 1 stale tmp
        assert store.clear() == 3
        assert len(store) == 0
