"""Tests for the content-addressed result store (repro.exp.store)."""

from repro.exp import PointResult, PointSpec, ResultStore, default_salt
from repro.mem.result import LevelStats


def spec(**overrides):
    params = dict(depth=64, msg_bytes=8)
    params.update(overrides.pop("params", {}))
    defaults = dict(kind="osu", series="baseline", x=1.0, seed=2)
    defaults.update(overrides)
    return PointSpec.make(
        defaults["kind"], defaults["series"], defaults["x"], seed=defaults["seed"], **params
    )


def result_with_stats():
    ms = LevelStats()
    ms.loads = 3
    ms.lines = 12
    ms.l1_hits = 7
    ms.l3_hits = 2
    ms.dram_fills = 3
    ms.cycles = 480.5
    return PointResult(
        y=123.25, yerr=4.5, mem_stats=ms, extras={"latency_us": 1.5}, elapsed_s=0.25
    )


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(tmp_path)
        original = result_with_stats()
        store.put(spec(), original)
        restored = store.get(spec())
        assert (restored.y, restored.yerr) == (original.y, original.yerr)
        assert restored.mem_stats.snapshot() == original.mem_stats.snapshot()
        assert restored.extras == {"latency_us": 1.5}
        assert restored.elapsed_s == original.elapsed_s

    def test_none_mem_stats_roundtrips(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        assert store.get(spec()).mem_stats is None

    def test_presentation_does_not_split_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(series="panel a", x=1.0), PointResult(y=7.0))
        hit = store.get(spec(series="panel c", x=9.0))
        assert hit is not None and hit.y == 7.0
        assert len(store) == 1


class TestMisses:
    def test_absent_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(spec()) is None
        assert store.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        store.path_for(spec()).write_text("{not json", encoding="utf-8")
        assert store.get(spec()) is None

    def test_foreign_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        store.path_for(spec()).write_text('{"unrelated": true}', encoding="utf-8")
        assert store.get(spec()) is None


class TestIntegrity:
    def test_flipped_byte_fails_checksum_and_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), result_with_stats())
        assert store.corrupt(spec())
        assert store.get(spec()) is None
        assert store.quarantined == 1
        (corrupt_path,) = store.quarantined_paths
        assert corrupt_path.suffix == ".corrupt"
        assert corrupt_path.exists()
        # The slot is free again: a rewrite heals the store.
        store.put(spec(), result_with_stats())
        assert store.get(spec()) is not None

    def test_truncated_entry_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        path = store.path_for(spec())
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.get(spec()) is None
        assert store.quarantined == 1

    def test_missing_checksum_field_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0))
        import json

        path = store.path_for(spec())
        doc = json.loads(path.read_text(encoding="utf-8"))
        del doc["sha256"]
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.get(spec()) is None
        assert store.quarantined == 1

    def test_timing_fields_are_not_checksummed(self, tmp_path):
        # elapsed_s is noise, not physics: editing it must not invalidate.
        store = ResultStore(tmp_path)
        store.put(spec(), PointResult(y=1.0, elapsed_s=0.5))
        import json

        path = store.path_for(spec())
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["elapsed_s"] = 99.0
        path.write_text(json.dumps(doc), encoding="utf-8")
        hit = store.get(spec())
        assert hit is not None and hit.elapsed_s == 99.0
        assert store.quarantined == 0

    def test_corrupt_on_absent_entry_is_false(self, tmp_path):
        assert not ResultStore(tmp_path).corrupt(spec())


class TestSalting:
    def test_salt_isolates_entries(self, tmp_path):
        old = ResultStore(tmp_path, salt="repro-0.1/store-1")
        new = ResultStore(tmp_path, salt="repro-0.2/store-1")
        old.put(spec(), PointResult(y=1.0))
        # Same directory, different code version: stale physics is a miss.
        assert new.get(spec()) is None
        assert old.get(spec()) is not None

    def test_default_salt_carries_package_version(self):
        from repro._version import __version__

        assert __version__ in default_salt()


class TestAccounting:
    def test_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(spec())
        store.put(spec(), PointResult(y=1.0))
        store.get(spec())
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)

    def test_len_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        store.put(spec(seed=2), PointResult(y=2.0))
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get(spec(seed=1)) is None

    def test_len_and_clear_cover_quarantine_and_stale_tmp(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        store.put(spec(seed=2), PointResult(y=2.0))
        # Quarantine one entry, and fake a temp file orphaned by a killed
        # writer: both are store state that len/clear must account for.
        store.corrupt(spec(seed=1))
        store.get(spec(seed=1))
        assert store.quarantined == 1
        shard = store.path_for(spec(seed=2)).parent
        (shard / "orphan.tmp").write_text("partial write", encoding="utf-8")
        assert len(store) == 3  # 1 live + 1 quarantined + 1 stale tmp
        assert store.clear() == 3
        assert len(store) == 0


class TestStats:
    def test_inventory_and_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get(spec(seed=1))  # miss
        store.put(spec(seed=1), PointResult(y=1.0))
        store.put(spec(seed=2), PointResult(y=2.0))
        store.get(spec(seed=1))  # hit
        store.corrupt(spec(seed=2))
        store.get(spec(seed=2))  # quarantines
        (store.path_for(spec(seed=1)).parent / "orphan.tmp").write_text("x")
        stats = store.stats()
        assert stats.entries == 1 and stats.corrupt == 1 and stats.tmp == 1
        assert stats.entry_bytes > 0
        assert (stats.hits, stats.misses, stats.puts) == (1, 2, 2)
        assert stats.quarantined == 1 and stats.evicted == 0
        assert 0.0 < stats.hit_rate_pct < 100.0
        doc = stats.to_dict()
        assert doc["entries"] == 1 and "hit_rate_pct" in doc

    def test_empty_store(self, tmp_path):
        stats = ResultStore(tmp_path).stats()
        assert stats.entries == 0 and stats.hit_rate_pct == 0.0


class TestIntegritySweep:
    def test_quarantines_only_damaged_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        store.put(spec(seed=2), PointResult(y=2.0))
        store.put(spec(seed=3), PointResult(y=3.0))
        store.corrupt(spec(seed=2))
        assert store.integrity_sweep() == 1
        assert store.get(spec(seed=1)) is not None
        assert store.get(spec(seed=3)) is not None
        stats = store.stats()
        assert stats.entries == 2 and stats.corrupt == 1

    def test_clean_store_sweeps_to_zero(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        assert store.integrity_sweep() == 0

    def test_unparseable_entry_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for(spec())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{truncated", encoding="utf-8")
        assert store.integrity_sweep() == 1


class TestEvictLru:
    def test_shrinks_oldest_first(self, tmp_path):
        import os

        store = ResultStore(tmp_path)
        for seed in (1, 2, 3):
            path = store.put(spec(seed=seed), PointResult(y=float(seed)))
            # Deterministic, strictly increasing mtimes.
            os.utime(path, (1000.0 * seed, 1000.0 * seed))
        sizes = {
            seed: store.path_for(spec(seed=seed)).stat().st_size for seed in (1, 2, 3)
        }
        keep = sizes[2] + sizes[3]
        assert store.evict_lru(keep) == 1
        assert store.get(spec(seed=1)) is None  # oldest write went first
        assert store.get(spec(seed=2)) is not None
        assert store.get(spec(seed=3)) is not None
        assert store.evicted == 1

    def test_under_budget_is_a_no_op(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        assert store.evict_lru(1 << 30) == 0
        assert store.evict_lru(-1) == 0
        assert store.get(spec(seed=1)) is not None

    def test_zero_budget_clears_live_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        store.put(spec(seed=2), PointResult(y=2.0))
        assert store.evict_lru(0) == 2
        assert store.stats().entries == 0


class TestConcurrentWriterHardening:
    def test_tmp_names_are_per_process_unique(self, tmp_path):
        """The temp-file prefix embeds the pid, so concurrent writers from
        different processes can never collide on a temp name."""
        import os

        store = ResultStore(tmp_path)
        seen = []
        original = os.replace

        def spy(src, dst):
            seen.append(str(src))
            return original(src, dst)

        os.replace = spy
        try:
            store.put(spec(), PointResult(y=1.0))
        finally:
            os.replace = original
        (tmp_name,) = seen
        assert f"put-{os.getpid()}-" in tmp_name

    def test_scan_tolerates_directories_vanishing(self, tmp_path):
        """A shard directory deleted mid-scan (another process clearing)
        is skipped, never an error."""
        import shutil

        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        store.put(spec(seed=2), PointResult(y=2.0))
        walker = store._files()
        next(walker)  # scan has started
        for child in list(store.root.iterdir()):
            shutil.rmtree(child)
        remaining = list(walker)  # must finish without raising
        assert len(store) == len(list(store._files()))
        assert store.clear() >= 0
        assert isinstance(remaining, list)

    def test_stats_tolerates_entry_vanishing_between_list_and_stat(self, tmp_path, monkeypatch):
        from pathlib import Path

        store = ResultStore(tmp_path)
        store.put(spec(seed=1), PointResult(y=1.0))
        original = Path.stat

        def flaky_stat(self, **kwargs):
            if self.suffix == ".json":
                raise FileNotFoundError(str(self))
            return original(self, **kwargs)

        monkeypatch.setattr(Path, "stat", flaky_stat)
        stats = store.stats()
        assert stats.entries == 1 and stats.entry_bytes == 0
