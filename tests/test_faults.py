"""End-to-end tests for deterministic fault injection + supervised execution.

The contract under test, from EXPERIMENTS.md "Failure semantics": faults
change *whether and when* a point runs, never *what it computes* — every
surviving point of a crashy/hangy/bit-rotted run must be bit-identical to
a fault-free serial run, and the RunReport must name exactly what went
wrong and what the supervisor did about it.

Fast sections use a tiny registered producer; the acceptance test at the
bottom drives a real (reduced) Figure 4 grid through crashes, hangs, and
store corruption at ``--jobs 4``.
"""

import pytest

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_spatial_search_length
from repro.errors import ConfigurationError, InjectedFaultError, PointExecutionError
from repro.exp import ExperimentPlan, PointResult, ResultStore, Runner, register_producer
from repro.faults import ENV_FAULTS, Fault, FaultAction, FaultPlan


def _value_producer(kwargs, seed):
    return PointResult(y=float(kwargs["v"]) * 10.0 + seed, extras={"v": float(kwargs["v"])})


# Registered at import time so fork-started pool workers inherit it.
register_producer("fault-test", _value_producer)


def make_plan(n=6):
    plan = ExperimentPlan(title="faults", xlabel="v", ylabel="y")
    for v in range(n):
        plan.add_point("fault-test", "s", float(v), seed=7, v=v)
    return plan


def baseline(n=6):
    """Fault-free serial results (the bit-identical reference).

    Built with an explicitly empty FaultPlan so it stays fault-free even
    inside tests that set REPRO_INJECT_FAULTS.
    """
    return [r.y for r in Runner(fault_plan=FaultPlan()).run(make_plan(n))]


class TestFaultPlanGrammar:
    def test_parse_round_trips(self):
        spec = "crash@1,raise@4:2,hang@2:1:0.5,corrupt@3"
        plan = FaultPlan.parse(spec)
        assert plan.describe() == ["crash@1", "raise@4:2", "hang@2:1:0.5", "corrupt@3"]
        assert FaultPlan.parse(",".join(plan.describe())).describe() == plan.describe()

    def test_hang_gets_default_duration(self):
        (fault,) = FaultPlan.parse("hang@0").faults
        assert fault.seconds > 0.0

    @pytest.mark.parametrize(
        "bad", ["explode@0", "crash", "crash@", "crash@x", "crash@0:1:2:3", "raise@-1"]
    )
    def test_bad_entries_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(bad)

    def test_env_hook(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULTS, "raise@0:2")
        runner = Runner(retries=2, backoff_s=0.0)
        assert runner.fault_plan is not None
        assert runner.fault_plan.describe() == ["raise@0:2"]
        results = runner.run(make_plan(2))
        assert [r.y for r in results] == baseline(2)
        assert runner.last_stats.retried == 2

    def test_env_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULTS, raising=False)
        assert Runner().fault_plan is None

    def test_scatter_is_seed_deterministic(self):
        a = FaultPlan.scatter(200, seed=11, rate=0.25)
        b = FaultPlan.scatter(200, seed=11, rate=0.25)
        c = FaultPlan.scatter(200, seed=12, rate=0.25)
        assert a.describe() == b.describe()
        assert a.describe() != c.describe()
        assert 20 <= len(a) <= 80  # ~50 expected

    def test_attempt_window(self):
        plan = FaultPlan([Fault(kind="raise", index=3, attempts=2)])
        assert plan.action_for(3, 0) is not None
        assert plan.action_for(3, 1) is not None
        assert plan.action_for(3, 2) is None
        assert plan.action_for(2, 0) is None
        assert not plan.corrupts(3)
        assert FaultPlan.parse("corrupt@3").corrupts(3)

    def test_soft_crash_raises_in_process(self):
        # In-process execution must never take down the supervisor itself.
        with pytest.raises(InjectedFaultError, match="soft"):
            FaultAction(kind="crash").trigger(allow_hard_crash=False)


class TestSerialSupervision:
    def test_raise_then_retry_is_bit_identical(self):
        runner = Runner(retries=1, backoff_s=0.0, fault_plan=FaultPlan.parse("raise@2"))
        assert [r.y for r in runner.run(make_plan())] == baseline()
        assert runner.last_stats.retried == 1
        outcomes = [(a.index, a.attempt, a.outcome) for a in runner.last_report.attempts]
        assert (2, 0, "error") in outcomes and (2, 1, "ok") in outcomes

    def test_hang_trips_posthoc_timeout_and_reschedules(self):
        fault_plan = FaultPlan([Fault(kind="hang", index=1, seconds=0.2)])
        runner = Runner(retries=1, timeout_s=0.05, backoff_s=0.0, fault_plan=fault_plan)
        assert [r.y for r in runner.run(make_plan(3))] == baseline(3)
        assert runner.last_report.timeouts == 1
        timed_out = [a for a in runner.last_report.attempts if a.outcome == "timeout"]
        assert [(a.index, a.error_type) for a in timed_out] == [(1, "Timeout")]

    def test_collect_completes_with_poisoned_point(self):
        # Poisoned on every attempt: the point can never succeed.
        fault_plan = FaultPlan.parse("raise@1:99")
        runner = Runner(retries=2, backoff_s=0.0, on_error="collect", fault_plan=fault_plan)
        plan = make_plan(4)
        results = runner.run(plan)
        assert results[1] is None
        assert [r.y for i, r in enumerate(results) if i != 1] == [
            y for i, y in enumerate(baseline(4)) if i != 1
        ]
        report = runner.last_report
        assert report.failed == 1 and not report.ok
        (failure,) = report.failures
        assert (failure.index, failure.attempts, failure.error_type) == (
            1, 3, "InjectedFaultError",
        )
        # The reduced sweep completes, minus the failed point.
        sweep = runner.run_sweep(plan)
        assert sweep.series["s"].x == [0.0, 2.0, 3.0]

    def test_fail_fast_raises_with_cause_chain(self):
        runner = Runner(retries=1, backoff_s=0.0, fault_plan=FaultPlan.parse("raise@0:99"))
        with pytest.raises(PointExecutionError) as excinfo:
            runner.run(make_plan(2))
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, InjectedFaultError)

    def test_backoff_schedule_is_deterministic_and_capped(self):
        runner = Runner(backoff_s=0.1, backoff_cap_s=0.3)
        spec = make_plan(1).points[0]
        delays = [runner._backoff_delay(spec, attempt) for attempt in range(6)]
        assert delays == [runner._backoff_delay(spec, attempt) for attempt in range(6)]
        assert all(0.0 < d <= 0.3 for d in delays)
        # Non-decreasing, and jittered per-attempt below the cap (the
        # "reseeded retry schedule"); see test_exp_runner's property suite.
        assert delays == sorted(delays)
        assert len(set(delays[:2])) == 2


class TestPoolSupervision:
    def test_crash_breaks_pool_then_rebuild_recovers(self):
        runner = Runner(
            jobs=2, retries=1, backoff_s=0.0, fault_plan=FaultPlan.parse("crash@0")
        )
        with pytest.warns(RuntimeWarning, match="rebuilding"):
            results = runner.run(make_plan())
        assert [r.y for r in results] == baseline()
        report = runner.last_report
        assert report.pool_rebuilds == 1
        assert report.crashes >= 1
        assert not report.degraded_serial

    def test_hung_worker_is_terminated_and_point_rescheduled(self):
        fault_plan = FaultPlan([Fault(kind="hang", index=2, seconds=10.0)])
        runner = Runner(
            jobs=2, retries=1, timeout_s=0.4, backoff_s=0.0, fault_plan=fault_plan
        )
        results = runner.run(make_plan())
        assert [r.y for r in results] == baseline()
        report = runner.last_report
        assert report.timeouts == 1
        assert report.pool_rebuilds == 1  # the stuck worker was replaced

    def test_degrades_to_serial_after_rebuild_budget(self):
        # Two pool breaks (crash fires on attempts 0 and 1) exhaust the
        # single-rebuild budget; the survivors finish in-process.
        runner = Runner(
            jobs=2, retries=2, backoff_s=0.0, fault_plan=FaultPlan.parse("crash@0:2")
        )
        with pytest.warns(RuntimeWarning, match="degrading"):
            results = runner.run(make_plan())
        assert [r.y for r in results] == baseline()
        report = runner.last_report
        assert report.degraded_serial
        assert report.pool_rebuilds == 1

    def test_fail_fast_flushes_completed_siblings_to_store(self, tmp_path):
        # The poisoned point raises only after a delay, so every sibling
        # finishes first; fail-fast must persist them before propagating.
        store = ResultStore(tmp_path)
        fault_plan = FaultPlan([Fault(kind="raise", index=0, attempts=99, seconds=0.4)])
        runner = Runner(jobs=4, store=store, backoff_s=0.0, fault_plan=fault_plan)
        with pytest.raises(PointExecutionError):
            runner.run(make_plan())
        assert store.puts == 5
        assert runner.last_stats.executed == 5
        assert runner.last_stats.elapsed_s > 0.0
        # A resume run only has the poisoned point left to execute.
        resumed = Runner(store=store)
        assert [r.y for r in resumed.run(make_plan())] == baseline()
        assert resumed.last_stats.cached == 5
        assert resumed.last_stats.executed == 1

    def test_collect_jobs4_reports_poisoned_point(self):
        runner = Runner(
            jobs=4,
            retries=1,
            backoff_s=0.0,
            on_error="collect",
            fault_plan=FaultPlan.parse("raise@3:99"),
        )
        results = runner.run(make_plan())
        assert results[3] is None
        assert [r.y for i, r in enumerate(results) if i != 3] == [
            y for i, y in enumerate(baseline()) if i != 3
        ]
        assert [f.index for f in runner.last_report.failures] == [3]


class TestStoreIntegrityEndToEnd:
    def test_corrupted_entry_is_quarantined_and_reexecuted(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = make_plan(4)
        Runner(store=store).run(plan)
        assert store.corrupt(plan.points[2])

        healer = Runner(store=store)
        results = healer.run(plan)
        assert [r.y for r in results] == baseline(4)
        assert healer.last_stats.cached == 3
        assert healer.last_stats.executed == 1  # the quarantined point reran
        assert healer.last_report.quarantined == 1
        corrupt_files = list(tmp_path.glob("*/*.corrupt"))
        assert len(corrupt_files) == 1
        # The healed entry is back; a third run is a pure cache read.
        third = Runner(store=store)
        third.run(plan)
        assert third.last_stats.cached == 4

    def test_corrupt_fault_injected_through_runner(self, tmp_path):
        store = ResultStore(tmp_path)
        writer = Runner(store=store, fault_plan=FaultPlan.parse("corrupt@1"))
        writer.run(make_plan(3))
        assert writer.last_report.corruptions_injected == 1
        reader = Runner(store=store)
        assert [r.y for r in reader.run(make_plan(3))] == baseline(3)
        assert reader.last_report.quarantined == 1

    def test_report_json_schema_round_trips(self, tmp_path):
        import json

        runner = Runner(
            retries=1, backoff_s=0.0, on_error="collect",
            fault_plan=FaultPlan.parse("raise@0"),
        )
        runner.run(make_plan(2))
        doc = json.loads(runner.last_report.to_json())
        for key in (
            "total", "executed", "cached", "deduped", "failed", "retried",
            "timeouts", "crashes", "pool_rebuilds", "degraded_serial",
            "quarantined", "corruptions_injected", "elapsed_s", "jobs",
            "on_error", "injected_faults", "attempts", "failures",
        ):
            assert key in doc
        assert doc["injected_faults"] == ["raise@0"]
        assert doc["attempts"][0]["outcome"] == "error"
        assert doc["failures"] == []


class TestRealGridAcceptance:
    """A real (reduced) Figure 4 grid survives crashes, hangs, and bit-rot
    under ``--jobs 4 --retries 2 --on-error collect`` with every surviving
    point bit-identical to a fault-free serial run."""

    def fig4_plan(self):
        return plan_spatial_search_length(
            SANDY_BRIDGE, msg_bytes=1, depths=(1, 16, 64), iterations=2, seed=0
        )

    def test_faulty_parallel_run_matches_fault_free_serial(self, tmp_path):
        reference = Runner().run_sweep(self.fig4_plan())

        # The crash (index 1, first submission batch) breaks the pool long
        # before index 15 is submitted, so the hang's deadline genuinely
        # trips on the rebuilt pool instead of dying as a crash casualty.
        store = ResultStore(tmp_path)
        fault_plan = FaultPlan(
            [
                Fault(kind="crash", index=1),
                Fault(kind="raise", index=4, attempts=2),
                Fault(kind="corrupt", index=5),
                Fault(kind="hang", index=15, seconds=8.0),
            ]
        )
        runner = Runner(
            jobs=4,
            store=store,
            retries=2,
            timeout_s=2.0,
            backoff_s=0.0,
            on_error="collect",
            fault_plan=fault_plan,
        )
        with pytest.warns(RuntimeWarning):
            sweep = runner.run_sweep(self.fig4_plan())
        report = runner.last_report
        assert report.ok, report.render()
        assert report.crashes >= 1
        assert report.timeouts == 1
        assert report.corruptions_injected == 1
        assert repr(sweep) == repr(reference)
        mem = {k: v.snapshot() for k, v in sweep.meta.get("mem_stats", {}).items()}
        ref_mem = {
            k: v.snapshot() for k, v in reference.meta.get("mem_stats", {}).items()
        }
        assert mem == ref_mem

        # The bit-rotted entry is quarantined on resume and heals back to
        # the identical sweep.
        resumed = Runner(jobs=4, store=store)
        resumed_sweep = resumed.run_sweep(self.fig4_plan())
        assert resumed.last_report.quarantined == 1
        assert resumed.last_stats.executed == 1
        assert repr(resumed_sweep) == repr(reference)
