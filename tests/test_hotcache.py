"""Tests for the hot-cache heater: regions, passes, locks, interference."""

import numpy as np
import pytest

from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.errors import ConfigurationError
from repro.hotcache import HeatedQueue, Heater, HeaterConfig, RegionSet
from repro.matching import (
    Envelope,
    MatchEngine,
    MatchItem,
    make_pattern,
    make_queue,
)
from repro.mem.alloc import Allocation


class TestRegionSet:
    def test_add_discard(self):
        rs = RegionSet()
        r = Allocation(0x1000, 64)
        assert rs.add(r) is True
        assert rs.add(r) is False
        assert r in rs
        assert rs.discard(r) is True
        assert rs.discard(r) is False

    def test_iteration_order(self):
        rs = RegionSet()
        regions = [Allocation(i * 0x1000, 64) for i in range(5)]
        for r in regions:
            rs.add(r)
        assert list(rs) == regions

    def test_totals(self):
        rs = RegionSet([Allocation(0, 100), Allocation(0x1000, 60)])
        assert rs.total_bytes() == 160
        assert rs.total_lines() == 2 + 1

    def test_replace_all(self):
        rs = RegionSet([Allocation(0, 64)])
        rs.replace_all([Allocation(0x1000, 64), Allocation(0x2000, 64)])
        assert len(rs) == 2


class TestHeaterPasses:
    def _heater(self, arch=SANDY_BRIDGE, **cfg_kw):
        hier = arch.build_hierarchy()
        cfg = HeaterConfig(**cfg_kw)
        return hier, Heater(hier, arch.ghz, cfg)

    def test_bad_config(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        with pytest.raises(ConfigurationError):
            Heater(hier, 2.6, HeaterConfig(period_ns=0))
        with pytest.raises(ConfigurationError):
            Heater(hier, 2.6, HeaterConfig(core_id=9))

    def test_catch_up_runs_due_passes(self):
        hier, heater = self._heater(period_ns=1000.0)
        heater.regions.add(Allocation(0x1000, 4096))
        heater.catch_up(2.6e3 * 3.5)  # 3.5 periods in cycles
        assert heater.passes == 4  # t=0, 1000, 2000, 3000 ns

    def test_pass_fills_shared_l3(self):
        hier, heater = self._heater()
        heater.regions.add(Allocation(0x1000, 4096))
        heater.force_pass(0.0)
        assert hier.l3.contains(0x1000 >> 6)
        # The matching core's private caches are untouched.
        assert not hier.cores[0].l1.contains(0x1000 >> 6)

    def test_matching_core_hits_l3_after_heating(self):
        hier, heater = self._heater()
        heater.regions.add(Allocation(0x1000, 4096))
        heater.force_pass(0.0)
        assert hier.access(0, 0x1000, 8) == pytest.approx(SANDY_BRIDGE.l3_latency)

    def test_lock_window_covers_pass(self):
        hier, heater = self._heater(locked=True, period_ns=1000.0)
        heater.regions.add(Allocation(0x1000, 64 * 1024))
        heater.catch_up(1.0)
        # A deregister landing mid-pass must wait.
        wait = heater.lock.acquire(heater.last_pass_duration / 2)
        assert wait > 0

    def test_unlocked_variant_has_free_ops(self):
        hier, heater = self._heater(locked=False)
        heater.regions.add(Allocation(0x1000, 4096))
        heater.catch_up(100.0)
        assert heater.on_deregister(None, 10.0) == 0.0
        assert heater.on_register(None, 10.0) == 0.0

    def test_locked_ops_cost_admin(self):
        hier, heater = self._heater(locked=True)
        cost = heater.on_register(Allocation(0x9000, 64), 10.0)
        assert cost >= heater.config.register_cycles
        assert Allocation(0x9000, 64) in heater.regions

    def test_saturation(self):
        hier, heater = self._heater(period_ns=100.0)  # 260 cycles
        heater.regions.replace_all(
            [Allocation(0x1000 + i * 64, 64) for i in range(200)]
        )
        heater.force_pass(0.0)
        assert heater.saturated
        # Starvation penalty applies to locked ops when saturated.
        cost = heater.on_deregister(None, heater.next_pass_start + 1)
        assert cost >= heater.config.saturated_retry_passes * heater.last_pass_duration

    def test_not_saturated_with_small_region(self):
        hier, heater = self._heater(period_ns=10000.0)
        heater.regions.add(Allocation(0x1000, 64))
        heater.force_pass(0.0)
        assert not heater.saturated

    def test_disabled_heater_is_inert(self):
        hier, heater = self._heater()
        heater.regions.add(Allocation(0x1000, 4096))
        heater.enabled = False
        heater.catch_up(1e9)
        assert heater.passes == 0
        assert heater.on_deregister(None, 0.0) == 0.0

    def test_reset(self):
        hier, heater = self._heater()
        heater.regions.add(Allocation(0x1000, 4096))
        heater.catch_up(1e6)
        heater.reset(500.0)
        assert heater.passes == 0
        assert heater.next_pass_start == 500.0

    def test_region_provider_refreshes_each_pass(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        regions = [Allocation(0x1000, 64)]
        heater = Heater(hier, 2.6, HeaterConfig(), region_provider=lambda: regions)
        heater.force_pass(0.0)
        assert len(heater.regions) == 1
        regions.append(Allocation(0x2000, 64))
        heater.force_pass(heater.next_pass_start)
        assert len(heater.regions) == 2


class TestHeatedQueue:
    def _build(self, family, arch=SANDY_BRIDGE, locked=None):
        hier = arch.build_hierarchy()
        engine = MatchEngine(hier)
        q = make_queue(family, port=engine, rng=np.random.default_rng(0))
        if locked is None:
            locked = family == "baseline"
        heater = Heater(hier, arch.ghz, HeaterConfig(locked=locked))
        return hier, engine, HeatedQueue(q, heater, engine)

    def test_semantics_preserved(self):
        _, _, q = self._build("baseline")
        q.post(make_pattern(1, 2, 0, seq=0))
        found = q.match_remove(MatchItem.from_envelope(Envelope(1, 2, 0), seq=9))
        assert found.seq == 0
        assert len(q) == 0

    def test_family_label(self):
        _, _, q = self._build("lla-2")
        assert q.family == "hc+lla"

    def test_lla_uses_pool_regions(self):
        _, _, q = self._build("lla-2")
        assert q._per_node_regions is False

    def test_baseline_uses_node_regions(self):
        _, _, q = self._build("baseline")
        assert q._per_node_regions is True

    def test_prepare_phase_heats(self):
        hier, engine, q = self._build("lla-2")
        for seq in range(64):
            q.post(make_pattern(0, seq, 0, seq=seq))
        hier.flush()
        q.prepare_phase()
        item = next(iter(q.iter_items()))
        line = item.addr >> 6
        assert hier.l3.contains(line)

    def test_heating_speeds_up_cold_searches(self):
        def run(heated):
            hier = SANDY_BRIDGE.build_hierarchy()
            engine = MatchEngine(hier)
            q = make_queue("baseline", port=engine, rng=np.random.default_rng(0))
            if heated:
                heater = Heater(hier, 2.6, HeaterConfig(locked=True))
                q = HeatedQueue(q, heater, engine)
            for seq in range(512):
                q.post(make_pattern(0, 10_000 + seq, 0, seq=seq))
            q.post(make_pattern(1, 7, 0, seq=600))
            hier.flush()
            if heated:
                q.prepare_phase()
            probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=9999)
            _, cycles = engine.timed(lambda: q.match_remove(probe))
            return cycles

        assert run(True) < run(False) / 1.5  # Sandy Bridge: clear HC win


class TestArchitectureContrast:
    """The paper's headline temporal result: HC wins on Sandy Bridge and is
    a (slight) loss on Broadwell (sections 4.3, Figures 6/7)."""

    @staticmethod
    def _hc_vs_baseline(arch, depth=1024):
        def run(heated):
            hier = arch.build_hierarchy()
            engine = MatchEngine(hier)
            q = make_queue("baseline", port=engine, rng=np.random.default_rng(1))
            if heated:
                heater = Heater(hier, arch.ghz, HeaterConfig(locked=True))
                q = HeatedQueue(q, heater, engine)
            for seq in range(depth):
                q.post(make_pattern(0, 10_000 + seq, 0, seq=seq))
            q.post(make_pattern(1, 7, 0, seq=depth + 9))
            hier.flush()
            if heated:
                q.prepare_phase()
            probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=99_999)
            _, cycles = engine.timed(lambda: q.match_remove(probe))
            return cycles

        return run(True), run(False)

    def test_sandy_bridge_hot_caching_wins(self):
        hot, cold = self._hc_vs_baseline(SANDY_BRIDGE)
        assert hot < cold * 0.6

    def test_broadwell_hot_caching_loses(self):
        hot, cold = self._hc_vs_baseline(BROADWELL)
        assert hot > cold  # the paper's negative result
