"""Tests for the heater mitigation policies of paper section 3.2."""

import pytest

from repro.arch import SANDY_BRIDGE
from repro.errors import ConfigurationError
from repro.hotcache import CollaborativeHeater, DefectiveCoreHeater, HeaterConfig
from repro.mem.alloc import Allocation

REGION = Allocation(0x4000_0000, 64 * 1024)  # 1024 lines


def make_collab(**cfg_kw):
    hier = SANDY_BRIDGE.build_hierarchy()
    heater = CollaborativeHeater(hier, SANDY_BRIDGE.ghz, HeaterConfig(**cfg_kw))
    heater.regions.add(REGION)
    return hier, heater


class TestCollaborativeHeater:
    def test_paused_heater_runs_no_passes(self):
        hier, heater = make_collab()
        heater.pause()
        heater.catch_up(1e9)
        assert heater.passes == 0
        assert not hier.l3.contains(REGION.addr >> 6)

    def test_pause_does_not_backlog_passes(self):
        """After a long pause, resuming must not replay every missed pass."""
        hier, heater = make_collab()
        heater.pause()
        heater.catch_up(1e9)
        heater.paused = False
        heater.catch_up(1e9 + 1)
        assert heater.passes <= 1

    def test_generous_lead_fully_warms(self):
        hier, heater = make_collab()
        heater.pause()
        warm = heater.resume_before_phase(phase_start=1e6, lead_ns=100_000.0)
        assert warm == 1.0
        assert hier.l3.contains(REGION.addr >> 6)
        assert hier.l3.contains((REGION.addr + REGION.size - 64) >> 6)

    def test_zero_lead_warms_nothing(self):
        hier, heater = make_collab()
        heater.pause()
        warm = heater.resume_before_phase(phase_start=1e6, lead_ns=0.0)
        assert warm == 0.0
        assert not hier.l3.contains(REGION.addr >> 6)

    def test_partial_lead_warms_prefix(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        heater = CollaborativeHeater(hier, SANDY_BRIDGE.ghz, HeaterConfig())
        # Several small regions: the lead covers only the first few.
        regions = [Allocation(0x4000_0000 + i * 0x10000, 4096) for i in range(8)]
        for r in regions:
            heater.regions.add(r)
        per_region = heater.config.region_admin_cycles + 64 * heater.config.touch_cycles_per_line
        lead_ns = 3.2 * per_region / SANDY_BRIDGE.ghz  # ~3 regions worth
        warm = heater.resume_before_phase(phase_start=1e6, lead_ns=lead_ns)
        assert 0.0 < warm < 1.0
        assert hier.l3.contains(regions[0].addr >> 6)
        assert not hier.l3.contains(regions[-1].addr >> 6)

    def test_negative_lead_rejected(self):
        _, heater = make_collab()
        with pytest.raises(ConfigurationError):
            heater.resume_before_phase(0.0, -1.0)

    def test_resume_records_lock_window(self):
        _, heater = make_collab(locked=True)
        heater.pause()
        lead_ns = 100_000.0
        heater.resume_before_phase(phase_start=1e6, lead_ns=lead_ns)
        # The warming walk holds the lock from resume time on; an acquire in
        # the middle of that window must wait.
        window_start = 1e6 - lead_ns * SANDY_BRIDGE.ghz
        mid = window_start + heater.last_pass_duration / 2
        assert heater.lock.acquire(mid) > 0

    def test_empty_region_set_is_fully_warm(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        heater = CollaborativeHeater(hier, SANDY_BRIDGE.ghz, HeaterConfig())
        assert heater.resume_before_phase(0.0, 1000.0) == 1.0


class TestDefectiveCoreHeater:
    def _heater(self, slowdown=3.0, **cfg_kw):
        hier = SANDY_BRIDGE.build_hierarchy()
        heater = DefectiveCoreHeater(
            hier, SANDY_BRIDGE.ghz, HeaterConfig(**cfg_kw), slowdown=slowdown
        )
        heater.regions.add(REGION)
        return hier, heater

    def test_bad_slowdown(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        with pytest.raises(ConfigurationError):
            DefectiveCoreHeater(hier, 2.6, slowdown=0.5)

    def test_still_heats_shared_cache(self):
        hier, heater = self._heater()
        heater.force_pass(0.0)
        assert hier.l3.contains(REGION.addr >> 6)

    def test_slower_passes(self):
        _, slow = self._heater(slowdown=3.0)
        hier2 = SANDY_BRIDGE.build_hierarchy()
        from repro.hotcache import Heater

        normal = Heater(hier2, SANDY_BRIDGE.ghz, HeaterConfig())
        normal.regions.add(REGION)
        slow.force_pass(0.0)
        normal.force_pass(0.0)
        assert slow.last_pass_duration == pytest.approx(3.0 * normal.last_pass_duration)

    def test_no_interference_even_when_saturated(self):
        _, heater = self._heater(period_ns=10.0)  # guarantees saturation
        heater.force_pass(0.0)
        assert heater.saturated
        assert heater.config.interference_cycles == 0.0

    def test_lock_semantics_preserved(self):
        """The defective core still takes the region-list lock: correctness
        does not come free, only pipeline interference does."""
        _, heater = self._heater(locked=True, period_ns=10.0)
        heater.force_pass(0.0)
        cost = heater.on_deregister(None, heater.next_pass_start - 1.0)
        assert cost > 0
