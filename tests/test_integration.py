"""Cross-subsystem integration tests: whole pipelines, end to end."""

import operator

import numpy as np
import pytest

from repro.arch import BROADWELL, SANDY_BRIDGE
from repro.matching import make_queue
from repro.mpi import MpiWorld
from repro.mpi.process import MpiProcess
from repro.trace import RecordingProcess, TraceRecorder, loads, dumps, replay


class TestDesRuntimeWithEngine:
    """Full path: DES ranks -> fabric -> matching -> cache hierarchy."""

    def test_halo_exchange_with_cycle_accounting(self):
        NR, ROUNDS = 4, 3

        def program(ctx):
            left = (ctx.rank - 1) % ctx.size
            right = (ctx.rank + 1) % ctx.size
            for rnd in range(ROUNDS):
                yield from ctx.send(right, tag=rnd, nbytes=1024)
                yield from ctx.send(left, tag=100 + rnd, nbytes=1024)
                r1 = yield from ctx.recv(src=left, tag=rnd)
                r2 = yield from ctx.recv(src=right, tag=100 + rnd)
                assert r1.completed and r2.completed
                yield from ctx.barrier()

        world = MpiWorld(NR, queue_family="lla-2", arch=SANDY_BRIDGE, engine_ranks=(0,))
        finish = world.run(program)
        assert finish > 0
        engine = world.engines[0]
        assert engine.loads > 0
        # Matching happened on rank 0's accounted engine.
        assert world.procs[0].prq_search_depths or world.procs[0].umq_search_depths

    def test_collectives_through_accounted_engine(self):
        def program(ctx):
            total = yield from ctx.allreduce(ctx.rank, operator.add)
            assert total == sum(range(ctx.size))
            yield from ctx.barrier()

        world = MpiWorld(8, queue_family="hashmap", arch=BROADWELL, engine_ranks=(0, 1))
        world.run(program)
        assert world.engines[0].loads > 0


class TestRecordReplayPipeline:
    """DES run -> trace -> serialize -> replay on another design point."""

    def test_des_run_recorded_and_replayed(self):
        recorder = TraceRecorder()
        world = MpiWorld(2, seed=4)
        # Swap rank 1's process for a recording one, preserving its queues.
        old = world.procs[1]
        world.procs[1] = RecordingProcess(
            1, old.prq, old.umq, recorder=recorder, clock=old.clock
        )

        def program(ctx):
            if ctx.rank == 0:
                for tag in (5, 3, 9, 1):
                    yield from ctx.send(1, tag=tag, nbytes=32)
            else:
                for tag in (1, 3, 5, 9):
                    yield from ctx.recv(src=0, tag=tag)

        world.run(program)
        assert len(recorder.events) == 8  # 4 posts + 4 arrivals

        # Serialize, parse, replay across organizations.
        events = loads(dumps(recorder.events))
        ref = replay(events, queue_family="baseline")
        assert ref.matches == 4
        for family in ("lla-4", "openmpi", "adaptive"):
            out = replay(events, queue_family=family)
            assert out.matches == ref.matches
            assert out.unexpected == ref.unexpected

    def test_replay_cost_comparison_pipeline(self):
        """Record once, rank designs by replay cost — the tooling workflow."""
        recorder = TraceRecorder()
        rng = np.random.default_rng(0)
        proc = RecordingProcess(
            0,
            make_queue("baseline", rng=rng),
            make_queue("baseline", entry_bytes=16, rng=rng, arena_base=0x2000_0000),
            recorder=recorder,
        )
        for i in range(512):
            proc.post_recv(src=0, tag=1000 + i)
        from repro.matching import Envelope
        from repro.mpi.message import Message

        for i in reversed(range(0, 512, 7)):
            proc.handle_arrival(Message(Envelope(0, 1000 + i, 0), 64))

        costs = {
            family: replay(
                recorder.events, queue_family=family, arch=SANDY_BRIDGE, flush_every=64
            ).match_cycles
            for family in ("baseline", "lla-8")
        }
        assert costs["lla-8"] < costs["baseline"]


class TestMotifToReplay:
    """Queue-length statistics from a live process match the motif model."""

    def test_fill_drain_phase_matches_closed_form(self):
        from repro.motifs import occurrences_closed_form
        from repro.matching import Envelope
        from repro.mpi.message import Message

        rng = np.random.default_rng(0)
        proc = MpiProcess(
            0,
            make_queue("baseline", rng=rng),
            make_queue("baseline", entry_bytes=16, rng=rng, arena_base=0x2000_0000),
            sample_depths=True,
        )
        k = 9
        for i in range(k):  # fill
            proc.post_recv(src=0, tag=i)
        for i in range(k):  # drain
            proc.handle_arrival(Message(Envelope(0, i, 0), 0))
        observed = np.zeros(k + 1, dtype=np.int64)
        for s in proc.samples:
            observed[s.prq_len] += 1
        assert np.array_equal(observed, occurrences_closed_form(np.array([k])))


class TestValidationSmoke:
    def test_quick_spatial_validation_passes(self):
        from repro.validation import run_validation

        report = run_validation(quick=True, sections=["spatial"])
        assert report.passed, report.render()
