"""Tests for the cycle-accounted match engine and the locality orderings
the paper's Figures 4-7 rest on."""

import numpy as np
import pytest

from repro.arch import BROADWELL, NEHALEM, SANDY_BRIDGE
from repro.matching import (
    Envelope,
    MatchEngine,
    MatchItem,
    make_pattern,
    make_queue,
)
from repro.sim.clock import Clock


def cold_search_cycles(arch, family, depth, *, fragmented=False, seed=1):
    """Cycles for one cold traversal that matches at position `depth`."""
    hier = arch.build_hierarchy()
    engine = MatchEngine(hier)
    q = make_queue(family, port=engine, rng=np.random.default_rng(seed), fragmented=fragmented)
    for i in range(depth):
        q.post(make_pattern(0, 10_000 + i, 0, seq=i))
    q.post(make_pattern(1, 7, 0, seq=depth + 1))
    hier.flush()
    probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=99_999)
    _, cycles = engine.timed(lambda: q.match_remove(probe))
    return cycles


class TestEngineBasics:
    def test_loads_advance_clock(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        clock = Clock()
        engine = MatchEngine(hier, clock=clock)
        engine.load(0x1000, 8)
        assert clock.now > 0
        assert engine.loads == 1

    def test_repeat_load_cheaper(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        engine = MatchEngine(hier)
        _, first = engine.timed(lambda: engine.load(0x1000, 8))
        _, second = engine.timed(lambda: engine.load(0x1000, 8))
        assert second < first

    def test_store_cheap(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        engine = MatchEngine(hier)
        _, cost = engine.timed(lambda: engine.store(0x1000, 8))
        assert cost <= 2.0

    def test_store_warms_cache(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        engine = MatchEngine(hier)
        engine.store(0x1000, 8)
        _, cost = engine.timed(lambda: engine.load(0x1000, 8))
        assert cost < 10.0

    def test_charge(self):
        engine = MatchEngine(SANDY_BRIDGE.build_hierarchy())
        engine.charge(123.0)
        assert engine.clock.now == pytest.approx(123.0)

    def test_reset_counters(self):
        engine = MatchEngine(SANDY_BRIDGE.build_hierarchy())
        engine.load(0x1000, 8)
        engine.reset_counters()
        assert engine.loads == 0 and engine.load_cycles == 0.0

    def test_reset_counters_zeroes_sw_prefetches(self):
        engine = MatchEngine(SANDY_BRIDGE.build_hierarchy(), software_prefetch=True)
        engine.hint(0x1000, 256)
        assert engine.sw_prefetches > 0
        engine.reset_counters()
        assert engine.sw_prefetches == 0

    def test_level_stats_accumulate_per_load(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        engine = MatchEngine(hier)
        engine.load(0x1000, 8)  # cold: the line comes from DRAM
        engine.load(0x1000, 8)  # warm: L1 serves it
        stats = engine.mem_stats()
        assert stats is engine.level_stats
        assert stats.loads == 2
        assert stats.dram_fills == 1
        assert stats.l1_hits == 1
        assert stats.lines == 2
        assert stats.cycles == pytest.approx(
            engine.load_cycles - 2 * engine.compare_cycles
        )

    def test_level_stats_reset_with_counters(self):
        engine = MatchEngine(SANDY_BRIDGE.build_hierarchy())
        engine.load(0x1000, 8)
        engine.reset_counters()
        assert engine.level_stats.loads == 0
        assert engine.level_stats.lines == 0

    def test_stores_do_not_enter_level_stats(self):
        engine = MatchEngine(SANDY_BRIDGE.build_hierarchy())
        engine.store(0x1000, 8)
        assert engine.level_stats.loads == 0


class TestSpatialLocalityOrdering:
    """The core claims of Figures 4/5 must hold at the cycle level."""

    @pytest.mark.parametrize("arch", [SANDY_BRIDGE, BROADWELL], ids=lambda a: a.name)
    def test_lla_beats_baseline_at_depth(self, arch):
        base = cold_search_cycles(arch, "baseline", 1024)
        lla = cold_search_cycles(arch, "lla-8", 1024)
        assert lla < base / 2  # paper: up to 2x+ for small/medium messages

    def test_gain_grows_then_plateaus(self):
        """Section 4.2: 'a large jump from the baseline to the first linked
        list of arrays, and a slight increase as we increase the number of
        entries within an array'."""
        base = cold_search_cycles(SANDY_BRIDGE, "baseline", 1024)
        costs = {
            k: cold_search_cycles(SANDY_BRIDGE, f"lla-{k}", 1024)
            for k in (2, 4, 8, 16, 32)
        }
        assert costs[4] < costs[2]
        assert costs[8] < costs[4]
        # The whole k sweep moves far less than the baseline->LLA-2 jump...
        assert (costs[2] - costs[32]) < 0.25 * (base - costs[2])
        # ...and past 8 entries the residual gain is small.
        assert (costs[8] - costs[32]) < 0.2 * costs[8]

    def test_biggest_jump_is_baseline_to_first_lla(self):
        """Section 4.2: 'a large jump from the baseline to the first linked
        list of arrays, and a slight increase' thereafter."""
        base = cold_search_cycles(SANDY_BRIDGE, "baseline", 1024)
        lla2 = cold_search_cycles(SANDY_BRIDGE, "lla-2", 1024)
        lla32 = cold_search_cycles(SANDY_BRIDGE, "lla-32", 1024)
        assert (base - lla2) > 3 * (lla2 - lla32)

    def test_fragmented_baseline_worse_than_sequential(self):
        seq = cold_search_cycles(NEHALEM, "baseline", 512, fragmented=False)
        frag = cold_search_cycles(NEHALEM, "baseline", 512, fragmented=True)
        assert frag > seq

    def test_lla_large_at_least_as_good_as_lla2(self):
        lla2 = cold_search_cycles(NEHALEM, "lla-2", 2048)
        large = cold_search_cycles(NEHALEM, "lla-large", 2048)
        assert large <= lla2 * 1.05

    def test_short_lists_no_regression(self):
        """Key paper requirement: locality tricks must not hurt short lists."""
        base = cold_search_cycles(SANDY_BRIDGE, "baseline", 2)
        lla = cold_search_cycles(SANDY_BRIDGE, "lla-2", 2)
        assert lla <= base * 1.1


class TestPrefetchAblation:
    def test_lla_advantage_needs_prefetchers(self):
        """Without prefetch units the LLA keeps only its packing advantage."""
        def run(prefetch):
            hier = SANDY_BRIDGE.build_hierarchy(prefetch_enabled=prefetch)
            engine = MatchEngine(hier)
            q = make_queue("lla-8", port=engine, rng=np.random.default_rng(1))
            for i in range(512):
                q.post(make_pattern(0, 10_000 + i, 0, seq=i))
            q.post(make_pattern(1, 7, 0, seq=600))
            hier.flush()
            probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=9999)
            _, cycles = engine.timed(lambda: q.match_remove(probe))
            return cycles

        assert run(prefetch=True) < run(prefetch=False) / 2


class TestSoftwarePrefetch:
    """The section 6 middleware-prefetch proposal, unit level."""

    def _cycles(self, family, sw, fragmented=False):
        return cold_search_cycles_sw(family, sw, fragmented)

    def test_hint_noop_when_disabled(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        engine = MatchEngine(hier)
        engine.hint(0x1000, 64)
        assert engine.sw_prefetches == 0
        assert engine.clock.now == 0.0

    def test_hint_fills_l2_when_enabled(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        engine = MatchEngine(hier, software_prefetch=True)
        engine.hint(0x1000, 64)
        assert engine.sw_prefetches == 1
        assert hier.cores[0].l2.contains(0x1000 >> 6)

    def test_hint_skips_resident_lines(self):
        hier = SANDY_BRIDGE.build_hierarchy()
        engine = MatchEngine(hier, software_prefetch=True)
        engine.load(0x1000, 8)
        before = engine.sw_prefetches
        engine.hint(0x1000, 8)
        assert engine.sw_prefetches == before

    def test_rescues_baseline_traversal(self):
        off = self._cycles("baseline", False)
        on = self._cycles("baseline", True)
        assert on < off / 2

    def test_works_where_hardware_prefetch_is_blind(self):
        off = self._cycles("baseline", False, fragmented=True)
        on = self._cycles("baseline", True, fragmented=True)
        assert on < off / 2

    def test_stacks_with_lla(self):
        off = self._cycles("lla-8", False)
        on = self._cycles("lla-8", True)
        assert on <= off

    def test_null_port_counts_hints(self):
        from repro.matching.port import NullPort

        port = NullPort()
        q = make_queue("baseline", port=port, rng=np.random.default_rng(0))
        for i in range(16):
            q.post(make_pattern(0, i, 0, seq=i))
        port.reset()
        q.match_remove(MatchItem.from_envelope(Envelope(0, 15, 0), seq=99))
        assert port.hints > 0


def cold_search_cycles_sw(family, sw_prefetch, fragmented=False, depth=512):
    hier = SANDY_BRIDGE.build_hierarchy()
    engine = MatchEngine(hier, software_prefetch=sw_prefetch)
    q = make_queue(family, port=engine, rng=np.random.default_rng(1), fragmented=fragmented)
    for i in range(depth):
        q.post(make_pattern(0, 10_000 + i, 0, seq=i))
    q.post(make_pattern(1, 7, 0, seq=depth + 1))
    hier.flush()
    probe = MatchItem.from_envelope(Envelope(1, 7, 0), seq=99_999)
    _, cycles = engine.timed(lambda: q.match_remove(probe))
    return cycles
