"""Tests for envelopes, patterns, and the symmetric matching rule."""

import pytest
from hypothesis import given, strategies as st

from repro.matching.entry import MatchItem
from repro.matching.envelope import (
    ANY_SOURCE,
    ANY_TAG,
    FULL_MASK,
    Envelope,
    items_match,
    make_pattern,
)

ranks = st.integers(min_value=0, max_value=2**15 - 1)
tags = st.integers(min_value=0, max_value=2**20)
cids = st.integers(min_value=0, max_value=64)


class TestEnvelope:
    def test_fields(self):
        env = Envelope(src=3, tag=7, cid=1)
        assert (env.src, env.tag, env.cid) == (3, 7, 1)

    def test_wildcard_send_rejected(self):
        with pytest.raises(ValueError):
            Envelope(src=ANY_SOURCE, tag=0, cid=0)
        with pytest.raises(ValueError):
            Envelope(src=0, tag=ANY_TAG, cid=0)


class TestMakePattern:
    def test_concrete_pattern(self):
        p = make_pattern(3, 7, 1, seq=0)
        assert p.src_mask == FULL_MASK and p.tag_mask == FULL_MASK

    def test_any_source(self):
        p = make_pattern(ANY_SOURCE, 7, 1, seq=0)
        assert p.src_mask == 0 and p.wildcard_source

    def test_any_tag(self):
        p = make_pattern(3, ANY_TAG, 1, seq=0)
        assert p.tag_mask == 0 and p.wildcard_tag


class TestMatching:
    def _env_item(self, src, tag, cid):
        return MatchItem.from_envelope(Envelope(src, tag, cid), seq=99)

    def test_exact_match(self):
        assert items_match(make_pattern(3, 7, 1, 0), self._env_item(3, 7, 1))

    def test_source_mismatch(self):
        assert not items_match(make_pattern(3, 7, 1, 0), self._env_item(4, 7, 1))

    def test_tag_mismatch(self):
        assert not items_match(make_pattern(3, 7, 1, 0), self._env_item(3, 8, 1))

    def test_communicator_isolation(self):
        assert not items_match(make_pattern(3, 7, 1, 0), self._env_item(3, 7, 2))

    def test_any_source_matches_all_sources(self):
        p = make_pattern(ANY_SOURCE, 7, 1, 0)
        assert items_match(p, self._env_item(0, 7, 1))
        assert items_match(p, self._env_item(999, 7, 1))

    def test_any_tag_matches_all_tags(self):
        p = make_pattern(3, ANY_TAG, 1, 0)
        assert items_match(p, self._env_item(3, 0, 1))
        assert items_match(p, self._env_item(3, 12345, 1))

    def test_double_wildcard(self):
        p = make_pattern(ANY_SOURCE, ANY_TAG, 1, 0)
        assert items_match(p, self._env_item(8, 9, 1))
        assert not items_match(p, self._env_item(8, 9, 2))

    @given(ranks, tags, cids, ranks, tags, cids)
    def test_concrete_matching_is_field_equality(self, s1, t1, c1, s2, t2, c2):
        p = make_pattern(s1, t1, c1, 0)
        e = self._env_item(s2, t2, c2)
        assert items_match(p, e) == ((s1, t1, c1) == (s2, t2, c2))

    @given(ranks, tags, cids)
    def test_matching_is_symmetric(self, src, tag, cid):
        p = make_pattern(src, tag, cid, 0)
        e = self._env_item(src, tag, cid)
        assert items_match(p, e) == items_match(e, p)

    @given(
        st.one_of(st.just(ANY_SOURCE), ranks),
        st.one_of(st.just(ANY_TAG), tags),
        ranks,
        tags,
        cids,
    )
    def test_wildcard_semantics_reference(self, psrc, ptag, esrc, etag, cid):
        """The mask rule must agree with the obvious wildcard definition."""
        p = make_pattern(psrc, ptag, cid, 0)
        e = self._env_item(esrc, etag, cid)
        expected = (psrc in (ANY_SOURCE, esrc)) and (ptag in (ANY_TAG, etag))
        assert items_match(p, e) == expected
