"""Cross-family equivalence: every queue organization implements the same
MPI matching semantics, so random operation sequences must produce identical
match results on all of them. This is the load-bearing correctness property
of the whole matching substrate (hypothesis-driven)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.matching import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    MatchItem,
    make_pattern,
    make_queue,
)

FAMILIES = [
    "baseline", "lla-2", "lla-8", "lla-large", "openmpi", "hashmap", "fourd",
    "ch4", "adaptive",
]

# Small domains make collisions (and therefore interesting matches) likely.
_srcs = st.integers(min_value=0, max_value=3)
_tags = st.integers(min_value=0, max_value=3)
_cids = st.integers(min_value=0, max_value=1)

_post_op = st.tuples(
    st.just("post"),
    st.one_of(st.just(ANY_SOURCE), _srcs),
    st.one_of(st.just(ANY_TAG), _tags),
    _cids,
)
_probe_op = st.tuples(st.just("probe"), _srcs, _tags, _cids)
_ops = st.lists(st.one_of(_post_op, _probe_op), min_size=1, max_size=60)


def _run(family, ops):
    q = make_queue(family, rng=np.random.default_rng(0))
    outcomes = []
    for seq, (kind, src, tag, cid) in enumerate(ops):
        if kind == "post":
            q.post(make_pattern(src, tag, cid, seq=seq))
        else:
            found = q.match_remove(
                MatchItem.from_envelope(Envelope(src, tag, cid), seq=seq)
            )
            outcomes.append(found.seq if found is not None else None)
    remaining = [it.seq for it in q.iter_items()]
    return outcomes, sorted(remaining), len(q)


class TestEquivalence:
    @given(_ops)
    @settings(max_examples=120, deadline=None)
    def test_all_families_agree_on_prq_workload(self, ops):
        reference = _run(FAMILIES[0], ops)
        for family in FAMILIES[1:]:
            assert _run(family, ops) == reference, family

    @given(st.lists(st.tuples(st.sampled_from(["post", "probe"]), _srcs, _tags), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_umq_direction_agrees(self, raw_ops):
        """Stored envelopes searched by (possibly wildcard) patterns."""
        def run(family):
            q = make_queue(family, entry_bytes=16, rng=np.random.default_rng(0))
            outcomes = []
            for seq, (kind, src, tag) in enumerate(raw_ops):
                if kind == "post":
                    q.post(MatchItem.from_envelope(Envelope(src, tag, 0), seq=seq))
                else:
                    # Alternate wildcards deterministically from the data.
                    psrc = ANY_SOURCE if (src + tag) % 3 == 0 else src
                    ptag = ANY_TAG if (src * tag) % 4 == 1 else tag
                    found = q.match_remove(make_pattern(psrc, ptag, 0, seq=seq))
                    outcomes.append(found.seq if found is not None else None)
            return outcomes, len(q)

        reference = run(FAMILIES[0])
        for family in FAMILIES[1:]:
            assert run(family) == reference, family

    @given(_ops)
    @settings(max_examples=40, deadline=None)
    def test_reference_model(self, ops):
        """The baseline queue must agree with a 20-line list-of-dicts oracle."""
        from repro.matching.envelope import items_match

        oracle = []
        q = make_queue("baseline", rng=np.random.default_rng(0))
        for seq, (kind, src, tag, cid) in enumerate(ops):
            if kind == "post":
                item = make_pattern(src, tag, cid, seq=seq)
                q.post(make_pattern(src, tag, cid, seq=seq))
                oracle.append(item)
            else:
                probe = MatchItem.from_envelope(Envelope(src, tag, cid), seq=seq)
                expected = None
                for item in oracle:
                    if items_match(item, probe):
                        expected = item
                        break
                if expected is not None:
                    oracle.remove(expected)
                found = q.match_remove(probe)
                got = found.seq if found is not None else None
                want = expected.seq if expected is not None else None
                assert got == want
        assert [it.seq for it in q.iter_items()] == [it.seq for it in oracle]
