"""Behaviour specific to the extension queue families (CH4, adaptive)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.matching import Envelope, MatchItem, make_pattern, make_queue
from repro.matching.adaptive import AdaptiveHybridQueue
from repro.matching.ch4 import Ch4PerCommunicatorQueue
from repro.matching.port import NullPort


def env_probe(src, tag, cid=0, seq=10_000):
    return MatchItem.from_envelope(Envelope(src, tag, cid), seq=seq)


class TestCh4:
    def test_per_communicator_isolation_in_probes(self):
        """Traffic on other communicators never inflates a search."""
        q = Ch4PerCommunicatorQueue(rng=np.random.default_rng(0))
        for seq in range(100):
            q.post(make_pattern(0, seq, cid=seq % 10, seq=seq))
        q.match_remove(env_probe(0, 90, cid=0))
        # cid 0 holds only 10 entries; the probe may inspect at most those.
        assert q.stats.last_probes <= 10

    def test_single_communicator_degenerates_to_baseline_scan(self):
        q = Ch4PerCommunicatorQueue(rng=np.random.default_rng(0))
        for seq in range(50):
            q.post(make_pattern(0, seq, cid=0, seq=seq))
        q.match_remove(env_probe(0, 49, cid=0))
        assert q.stats.last_probes == 50

    def test_communicator_count(self):
        q = Ch4PerCommunicatorQueue(rng=np.random.default_rng(0))
        for cid in (0, 3, 7):
            q.post(make_pattern(0, 1, cid=cid, seq=cid))
        assert q.communicator_count() == 3
        q.match_remove(env_probe(0, 1, cid=3, seq=50))
        assert q.communicator_count() == 2

    def test_footprint_includes_table(self):
        q = Ch4PerCommunicatorQueue(rng=np.random.default_rng(0))
        assert q.footprint_bytes() >= 64 * 8


class TestAdaptive:
    def _queue(self, promote=8, demote=2):
        return AdaptiveHybridQueue(
            rng=np.random.default_rng(0), promote_at=promote, demote_at=demote
        )

    def test_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            AdaptiveHybridQueue(promote_at=10, demote_at=10)

    def test_starts_as_list(self):
        assert not self._queue().hashed

    def test_promotes_at_threshold(self):
        q = self._queue(promote=8)
        for seq in range(8):
            q.post(make_pattern(0, seq, 0, seq=seq))
        assert q.hashed
        assert q.migrations == 1

    def test_demotes_with_hysteresis(self):
        q = self._queue(promote=8, demote=2)
        for seq in range(8):
            q.post(make_pattern(0, seq, 0, seq=seq))
        assert q.hashed
        # Draining to 3 (> demote_at) must NOT flap back.
        for tag in range(5):
            q.match_remove(env_probe(0, tag, seq=100 + tag))
        assert q.hashed
        q.match_remove(env_probe(0, 5, seq=200))
        assert not q.hashed  # now at 2 == demote_at
        assert q.migrations == 2

    def test_items_survive_migration_in_order(self):
        q = self._queue(promote=4)
        for seq in range(6):
            q.post(make_pattern(0, 7, 0, seq=seq))  # identical patterns
        assert q.hashed
        got = [q.match_remove(env_probe(0, 7, seq=100 + i)).seq for i in range(6)]
        assert got == list(range(6))

    def test_hashed_mode_short_circuits_search(self):
        q = self._queue(promote=16)
        for seq in range(64):
            q.post(make_pattern(0, seq, 0, seq=seq))
        assert q.hashed
        q.match_remove(env_probe(0, 60, seq=1000))
        assert q.stats.last_probes < 10

    def test_list_mode_has_no_bin_overhead(self):
        port = NullPort()
        q = AdaptiveHybridQueue(rng=np.random.default_rng(0), port=port, promote_at=64, demote_at=4)
        q.post(make_pattern(0, 1, 0, seq=0))
        port.reset()
        q.match_remove(env_probe(0, 1))
        # One node load (+unlink stores); no bin-array loads.
        assert port.loads == 1

    def test_migration_charges_memory_traffic(self):
        port = NullPort()
        q = AdaptiveHybridQueue(rng=np.random.default_rng(0), port=port, promote_at=8, demote_at=2)
        for seq in range(7):
            q.post(make_pattern(0, seq, 0, seq=seq))
        before = port.loads + port.stores
        q.post(make_pattern(0, 7, 0, seq=7))  # triggers migration
        after = port.loads + port.stores
        assert after - before > 8  # drained + re-posted entries


class TestFactoryExtensions:
    def test_factory_builds_extensions(self):
        for family, cls in (("ch4", Ch4PerCommunicatorQueue), ("adaptive", AdaptiveHybridQueue)):
            q = make_queue(family, rng=np.random.default_rng(0))
            assert isinstance(q, cls)

    def test_unknown_family_message_lists_extensions(self):
        with pytest.raises(ConfigurationError, match="ch4"):
            make_queue("btree")
