"""LLA-specific behaviour: Figure 2 layout, hole management, node lifecycle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.matching import Envelope, MatchItem, make_pattern
from repro.matching.entry import (
    LLA_NODE_OVERHEAD,
    PRQ_ENTRY_BYTES,
    UMQ_ENTRY_BYTES,
    lla_entries_per_line,
    lla_node_bytes,
)
from repro.matching.lla import LinkedListOfArrays
from repro.matching.port import NullPort


def probe(src, tag, seq=1_000_000):
    return MatchItem.from_envelope(Envelope(src, tag, 0), seq=seq)


class TestFigure2Layout:
    def test_prq_two_entries_per_line(self):
        assert lla_entries_per_line(PRQ_ENTRY_BYTES) == 2

    def test_umq_three_entries_per_line(self):
        assert lla_entries_per_line(UMQ_ENTRY_BYTES) == 3

    def test_prq_k2_node_is_exactly_one_line(self):
        # 8B head/tail + 2x24B + 8B next = 64B (Figure 2).
        assert lla_node_bytes(2, PRQ_ENTRY_BYTES) == 64

    def test_umq_k3_node_is_exactly_one_line(self):
        assert lla_node_bytes(3, UMQ_ENTRY_BYTES) == 64

    def test_node_bytes_line_multiple(self):
        for k in (2, 4, 8, 16, 32, 128):
            assert lla_node_bytes(k) % 64 == 0

    def test_overhead_constant(self):
        assert LLA_NODE_OVERHEAD == 16


class TestNodeLifecycle:
    def test_bad_arity(self):
        with pytest.raises(ConfigurationError):
            LinkedListOfArrays(0)

    def test_node_count_growth(self):
        q = LinkedListOfArrays(4)
        for seq in range(9):
            q.post(make_pattern(0, seq, 0, seq=seq))
        assert q.node_count == 3

    def test_entries_within_node_contiguous(self):
        q = LinkedListOfArrays(4)
        items = [make_pattern(0, seq, 0, seq=seq) for seq in range(4)]
        for it in items:
            q.post(it)
        addrs = [it.addr for it in items]
        assert all(b - a == PRQ_ENTRY_BYTES for a, b in zip(addrs, addrs[1:]))

    def test_drained_node_released_to_pool(self):
        q = LinkedListOfArrays(2)
        for seq in range(4):
            q.post(make_pattern(0, seq, 0, seq=seq))
        assert q.node_count == 2
        q.match_remove(probe(0, 0))
        q.match_remove(probe(0, 1))  # first node drained
        assert q.node_count == 1
        assert q.pool.live_blocks == 1

    def test_interior_hole_then_reuse_on_drain(self):
        q = LinkedListOfArrays(4)
        for seq in range(8):
            q.post(make_pattern(0, seq, 0, seq=seq))
        q.match_remove(probe(0, 1))  # interior hole in node 0
        assert q.hole_count() == 1
        assert len(q) == 7

    def test_boundary_holes_tightened(self):
        q = LinkedListOfArrays(4)
        for seq in range(4):
            q.post(make_pattern(0, seq, 0, seq=seq))
        q.match_remove(probe(0, 0))  # head hole: start advances
        assert q.hole_count() == 0
        q.match_remove(probe(0, 3))  # tail hole: end retreats
        assert q.hole_count() == 0
        assert len(q) == 2

    def test_append_after_tail_tighten(self):
        q = LinkedListOfArrays(4)
        for seq in range(4):
            q.post(make_pattern(0, seq, 0, seq=seq))
        q.match_remove(probe(0, 3))
        q.post(make_pattern(0, 99, 0, seq=100))
        # FIFO must be preserved: the tail slot is reused for the new item.
        assert [it.seq for it in q.iter_items()] == [0, 1, 2, 100]

    def test_holes_cost_loads_but_not_probes(self):
        port = NullPort()
        q = LinkedListOfArrays(4, port=port)
        for seq in range(4):
            q.post(make_pattern(0, seq, 0, seq=seq))
        q.match_remove(probe(0, 1))
        port.reset()
        q.hole_probes = 0
        q.match_remove(probe(0, 3))
        assert q.hole_probes == 1  # walked over the seq=1 hole
        assert q.stats.last_probes == 3  # live entries 0, 2, 3

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 9)), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_live_count_invariant(self, ops):
        q = LinkedListOfArrays(3)
        live = {}
        seq = 0
        for is_post, tag in ops:
            if is_post:
                q.post(make_pattern(0, tag, 0, seq=seq))
                live.setdefault(tag, []).append(seq)
                seq += 1
            else:
                found = q.match_remove(probe(0, tag, seq=10_000 + seq))
                seq += 1
                if live.get(tag):
                    assert found.seq == live[tag].pop(0)
                else:
                    assert found is None
        assert len(q) == sum(len(v) for v in live.values())
        # Node bookkeeping: every node's live total matches the queue's.
        assert sum(n.live for n in q._nodes) == len(q)
        # Every slot outside [start, end) is dead.
        for node in q._nodes:
            for idx in range(node.start):
                assert node.slots[idx] is None or idx >= node.start
            assert all(node.slots[i] is None for i in range(node.end, q.entries_per_node))


class TestRegions:
    def test_regions_are_slabs(self):
        q = LinkedListOfArrays(2)
        for seq in range(100):
            q.post(make_pattern(0, seq, 0, seq=seq))
        regions = q.regions()
        assert regions == q.pool.regions()
        assert sum(r.size for r in regions) >= 100 // 2 * 64

    def test_region_set_stable_under_churn(self):
        q = LinkedListOfArrays(2)
        for seq in range(64):
            q.post(make_pattern(0, seq, 0, seq=seq))
        before = [(r.addr, r.size) for r in q.regions()]
        for seq in range(64):
            q.match_remove(probe(0, seq))
            q.post(make_pattern(0, 1000 + seq, 0, seq=1000 + seq))
        assert [(r.addr, r.size) for r in q.regions()] == before
