"""Per-family semantics tests for all match-queue organizations."""

import numpy as np
import pytest

from repro.matching import (
    ANY_SOURCE,
    ANY_TAG,
    Envelope,
    MatchItem,
    make_pattern,
    make_queue,
)
from repro.matching.port import NullPort

FAMILIES = [
    "baseline", "lla-2", "lla-8", "lla-large", "openmpi", "hashmap", "fourd",
    "ch4", "adaptive",
]


def new_queue(family, **kw):
    kw.setdefault("rng", np.random.default_rng(0))
    return make_queue(family, **kw)


def env_probe(src, tag, cid=0, seq=10_000):
    return MatchItem.from_envelope(Envelope(src, tag, cid), seq=seq)


@pytest.fixture(params=FAMILIES)
def family(request):
    return request.param


class TestBasicSemantics:
    def test_post_then_match(self, family):
        q = new_queue(family)
        q.post(make_pattern(1, 2, 0, seq=0))
        found = q.match_remove(env_probe(1, 2))
        assert found is not None and found.seq == 0
        assert len(q) == 0

    def test_miss_returns_none(self, family):
        q = new_queue(family)
        q.post(make_pattern(1, 2, 0, seq=0))
        assert q.match_remove(env_probe(1, 3)) is None
        assert len(q) == 1

    def test_empty_queue(self, family):
        q = new_queue(family)
        assert q.match_remove(env_probe(0, 0)) is None
        assert len(q) == 0

    def test_fifo_among_identical_patterns(self, family):
        q = new_queue(family)
        for seq in range(5):
            q.post(make_pattern(1, 2, 0, seq=seq))
        for expected in range(5):
            assert q.match_remove(env_probe(1, 2)).seq == expected

    def test_match_removes_only_one(self, family):
        q = new_queue(family)
        q.post(make_pattern(1, 2, 0, seq=0))
        q.post(make_pattern(1, 2, 0, seq=1))
        q.match_remove(env_probe(1, 2))
        assert len(q) == 1

    def test_iter_items_fifo(self, family):
        q = new_queue(family)
        for seq in range(6):
            q.post(make_pattern(seq % 3, seq, 0, seq=seq))
        assert [it.seq for it in q.iter_items()] == list(range(6))

    def test_communicator_isolation(self, family):
        q = new_queue(family)
        q.post(make_pattern(1, 2, 0, seq=0))
        q.post(make_pattern(1, 2, 7, seq=1))
        found = q.match_remove(env_probe(1, 2, cid=7))
        assert found.seq == 1


class TestWildcards:
    def test_any_source_posted(self, family):
        q = new_queue(family)
        q.post(make_pattern(ANY_SOURCE, 5, 0, seq=0))
        assert q.match_remove(env_probe(42, 5)).seq == 0

    def test_any_tag_posted(self, family):
        q = new_queue(family)
        q.post(make_pattern(3, ANY_TAG, 0, seq=0))
        assert q.match_remove(env_probe(3, 999)).seq == 0

    def test_wildcard_fifo_priority(self, family):
        """An earlier wildcard must beat a later exact match (MPI ordering)."""
        q = new_queue(family)
        q.post(make_pattern(ANY_SOURCE, 5, 0, seq=0))
        q.post(make_pattern(1, 5, 0, seq=1))
        assert q.match_remove(env_probe(1, 5)).seq == 0
        assert q.match_remove(env_probe(1, 5)).seq == 1

    def test_exact_before_later_wildcard(self, family):
        q = new_queue(family)
        q.post(make_pattern(1, 5, 0, seq=0))
        q.post(make_pattern(ANY_SOURCE, 5, 0, seq=1))
        assert q.match_remove(env_probe(1, 5)).seq == 0

    def test_wildcard_probe_against_concrete_items(self, family):
        """UMQ direction: a wildcard recv searches stored envelopes."""
        q = new_queue(family, entry_bytes=16)
        for seq, (src, tag) in enumerate([(4, 9), (5, 9), (6, 8)]):
            q.post(MatchItem.from_envelope(Envelope(src, tag, 0), seq=seq))
        probe = make_pattern(ANY_SOURCE, 9, 0, seq=100)
        assert q.match_remove(probe).seq == 0
        assert q.match_remove(probe).seq == 1
        assert q.match_remove(probe) is None


class TestStats:
    def test_probe_counting_linear_families(self):
        for family in ("baseline", "lla-2", "lla-8"):
            q = new_queue(family)
            for seq in range(10):
                q.post(make_pattern(1, seq, 0, seq=seq))
            q.match_remove(env_probe(1, 7))
            assert q.stats.last_probes == 8, family

    def test_search_depth_mean(self):
        q = new_queue("baseline")
        for seq in range(4):
            q.post(make_pattern(1, seq, 0, seq=seq))
        q.match_remove(env_probe(1, 0))  # depth 1
        q.match_remove(env_probe(1, 3))  # depth 3 (two removed? no: one)
        assert q.stats.matches == 2
        assert q.stats.mean_search_depth == pytest.approx((1 + 3) / 2)

    def test_failed_search_counted(self, family):
        q = new_queue(family)
        q.post(make_pattern(1, 2, 0, seq=0))
        q.match_remove(env_probe(9, 9))
        assert q.stats.failed_searches == 1

    def test_openmpi_short_circuit(self):
        """Open MPI's per-source lists avoid scanning other sources."""
        q = new_queue("openmpi")
        for seq in range(100):
            q.post(make_pattern(seq % 10, seq, 0, seq=seq))
        q.match_remove(env_probe(7, 7))
        assert q.stats.last_probes <= 10

    def test_hashmap_short_circuit(self):
        q = new_queue("hashmap")
        for seq in range(100):
            q.post(make_pattern(0, seq, 0, seq=seq))
        q.match_remove(env_probe(0, 50))
        assert q.stats.last_probes < 10


class TestMemoryAccounting:
    def test_loads_issued_on_search(self, family):
        port = NullPort()
        q = new_queue(family, port=port)
        for seq in range(8):
            q.post(make_pattern(1, seq, 0, seq=seq))
        port.reset()
        q.match_remove(env_probe(1, 7))
        if family in ("baseline", "lla-2", "lla-8", "lla-large"):
            # Linear structures traverse every earlier entry.
            assert port.loads >= 8
        else:
            # Structured families avoid the scan — that is their point —
            # but must still charge the lookups they do perform.
            assert port.loads >= 1

    def test_regions_cover_live_entries(self, family):
        q = new_queue(family)
        for seq in range(10):
            q.post(make_pattern(1, seq, 0, seq=seq))
        regions = q.regions()
        assert regions, family
        total = sum(r.size for r in regions)
        assert total >= 10 * q.entry_bytes

    def test_footprint_positive(self, family):
        q = new_queue(family)
        q.post(make_pattern(1, 1, 0, seq=0))
        assert q.footprint_bytes() > 0

    def test_addresses_assigned(self, family):
        q = new_queue(family)
        item = make_pattern(1, 1, 0, seq=0)
        q.post(item)
        assert item.addr != 0


class TestDrain:
    def test_drain_returns_fifo(self, family):
        q = new_queue(family)
        for seq in range(7):
            q.post(make_pattern(seq % 2, seq, 0, seq=seq))
        items = q.drain()
        assert [it.seq for it in items] == list(range(7))
        assert len(q) == 0
