"""Tests for the simulated allocators, including non-overlap properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError
from repro.mem.alloc import (
    Allocation,
    BumpAllocator,
    FragmentedHeap,
    SequentialHeap,
    SlabPool,
)
from repro.mem.layout import LINE_SIZE

BASE = 0x1000_0000
CAP = 1 << 26


def _no_overlap(allocs):
    ordered = sorted(allocs, key=lambda a: a.addr)
    for a, b in zip(ordered, ordered[1:]):
        assert a.end <= b.addr, f"{a} overlaps {b}"


class TestAllocation:
    def test_end(self):
        assert Allocation(100, 50).end == 150

    def test_overlap_detection(self):
        assert Allocation(0, 10).overlaps(Allocation(5, 10))
        assert not Allocation(0, 10).overlaps(Allocation(10, 10))


class TestBumpAllocator:
    def test_sequential_addresses(self):
        arena = BumpAllocator(BASE, CAP)
        a = arena.alloc(100)
        b = arena.alloc(100)
        assert b.addr >= a.end

    def test_alignment(self):
        arena = BumpAllocator(BASE, CAP, alignment=64)
        for _ in range(10):
            assert arena.alloc(17).addr % 64 == 0

    def test_exhaustion(self):
        arena = BumpAllocator(BASE, 128)
        arena.alloc(100)
        with pytest.raises(AllocationError):
            arena.alloc(100)

    def test_bad_size(self):
        with pytest.raises(AllocationError):
            BumpAllocator(BASE, CAP).alloc(0)

    def test_live_bytes(self):
        arena = BumpAllocator(BASE, CAP)
        a = arena.alloc(100)
        assert arena.live_bytes == 100
        arena.free(a)
        assert arena.live_bytes == 0

    def test_reset(self):
        arena = BumpAllocator(BASE, CAP)
        first = arena.alloc(64).addr
        arena.reset()
        assert arena.alloc(64).addr == first

    @given(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=100))
    def test_never_overlaps(self, sizes):
        arena = BumpAllocator(BASE, CAP)
        _no_overlap([arena.alloc(s) for s in sizes])


class TestSequentialHeap:
    def _heap(self, seed=0, **kw):
        return SequentialHeap(BASE, CAP, np.random.default_rng(seed), **kw)

    def test_mostly_ascending(self):
        heap = self._heap()
        addrs = [heap.alloc(40).addr for _ in range(100)]
        assert addrs == sorted(addrs)

    def test_header_gap_between_allocations(self):
        heap = self._heap(gap_prob=0.0)
        a = heap.alloc(40)
        b = heap.alloc(40)
        assert b.addr - a.end >= 0  # header/padding separates them
        assert b.addr - a.addr >= 40 + heap.header_bytes - heap.alignment

    def test_exact_size_reuse(self):
        heap = self._heap()
        a = heap.alloc(40)
        heap.free(a)
        b = heap.alloc(40)
        assert b.addr == a.addr

    def test_different_size_not_reused(self):
        heap = self._heap()
        a = heap.alloc(40)
        heap.free(a)
        b = heap.alloc(48)
        assert b.addr != a.addr

    def test_deterministic_given_seed(self):
        a = [self._heap(3).alloc(40).addr for _ in range(1)]
        b = [self._heap(3).alloc(40).addr for _ in range(1)]
        assert a == b

    @given(st.lists(st.integers(min_value=1, max_value=256), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_never_overlaps(self, sizes):
        heap = self._heap(11)
        _no_overlap([heap.alloc(s) for s in sizes])


class TestFragmentedHeap:
    def _heap(self, seed=0):
        return FragmentedHeap(BASE, 1 << 30, np.random.default_rng(seed))

    def test_scattered_addresses(self):
        heap = self._heap()
        addrs = [heap.alloc(40).addr for _ in range(50)]
        # Consecutive allocations should usually be far apart.
        gaps = [abs(b - a) for a, b in zip(addrs, addrs[1:])]
        assert sum(g > 1024 for g in gaps) > len(gaps) // 2

    def test_free_and_reuse(self):
        heap = self._heap()
        a = heap.alloc(40)
        heap.free(a)
        # Freed slot goes to the back of the class order; many allocations
        # later it can come out again.
        seen = {heap.alloc(40).addr for _ in range(600)}
        assert a.addr in seen or len(seen) == 600

    @given(st.lists(st.integers(min_value=1, max_value=128), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_never_overlaps(self, sizes):
        heap = self._heap(5)
        _no_overlap([heap.alloc(s) for s in sizes])


class TestSlabPool:
    def test_block_size_rounded_to_line(self):
        pool = SlabPool(40, arena=BumpAllocator(BASE, CAP))
        assert pool.block_size == 64

    def test_unrounded_when_disabled(self):
        pool = SlabPool(40, arena=BumpAllocator(BASE, CAP), align_to_line=False)
        assert pool.block_size == 40

    def test_fresh_pool_ascending_contiguous(self):
        pool = SlabPool(64, arena=BumpAllocator(BASE, CAP))
        addrs = [pool.alloc().addr for _ in range(16)]
        assert all(b - a == 64 for a, b in zip(addrs, addrs[1:]))

    def test_line_aligned_blocks(self):
        pool = SlabPool(64, arena=BumpAllocator(BASE + 8, CAP))
        for _ in range(10):
            assert pool.alloc().addr % LINE_SIZE == 0

    def test_lifo_reuse(self):
        pool = SlabPool(64, arena=BumpAllocator(BASE, CAP))
        a = pool.alloc()
        pool.free(a)
        assert pool.alloc().addr == a.addr

    def test_grows_new_slab(self):
        pool = SlabPool(64, arena=BumpAllocator(BASE, CAP), blocks_per_slab=4)
        for _ in range(9):
            pool.alloc()
        assert len(pool.slabs) == 3

    def test_regions_stable_under_churn(self):
        pool = SlabPool(64, arena=BumpAllocator(BASE, CAP), blocks_per_slab=8)
        blocks = [pool.alloc() for _ in range(8)]
        regions_before = [(r.addr, r.size) for r in pool.regions()]
        for b in blocks:
            pool.free(b)
        for _ in range(8):
            pool.alloc()
        assert [(r.addr, r.size) for r in pool.regions()] == regions_before

    def test_oversized_request_rejected(self):
        pool = SlabPool(64, arena=BumpAllocator(BASE, CAP))
        with pytest.raises(AllocationError):
            pool.alloc(65)

    def test_footprint(self):
        pool = SlabPool(64, arena=BumpAllocator(BASE, CAP), blocks_per_slab=8)
        pool.alloc()
        assert pool.footprint_bytes == 8 * 64

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_live_blocks_never_share_addresses(self, ops):
        pool = SlabPool(64, arena=BumpAllocator(BASE, CAP), blocks_per_slab=4)
        live = []
        for do_alloc in ops:
            if do_alloc or not live:
                live.append(pool.alloc())
            else:
                pool.free(live.pop())
        addrs = [b.addr for b in live]
        assert len(addrs) == len(set(addrs))
        _no_overlap(live)
