"""Tests for the set-associative cache: LRU semantics, partitioning, stats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.mem.cache import (
    CLS_DEFAULT,
    CLS_NETWORK,
    EvictionPolicy,
    SetAssociativeCache,
    WayPartition,
)
from repro.mem.soa import SoACache

#: Both kernel backends; behavioural tests below run against each.
BACKENDS = (SetAssociativeCache, SoACache)
BACKEND_IDS = ("reference", "soa")


def small_cache(assoc=4, nsets=4, **kw):
    return SetAssociativeCache("t", nsets * assoc * 64, assoc, 10.0, **kw)


def backend_cache(cache_cls, assoc=4, nsets=4, *, policy=EvictionPolicy.LRU, **kw):
    """A small cache of either backend; RANDOM gets a seeded rng implicitly."""
    if policy == EvictionPolicy.RANDOM and "rng" not in kw:
        kw["rng"] = np.random.default_rng(42)
    return cache_cls("t", nsets * assoc * 64, assoc, 10.0, policy=policy, **kw)


class TestConstruction:
    def test_geometry(self):
        c = small_cache(assoc=4, nsets=8)
        assert c.nsets == 8
        assert c.capacity_lines == 32

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache("t", 3 * 4 * 64, 4, 10.0)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            small_cache(policy="clock")

    def test_random_needs_rng(self):
        with pytest.raises(ConfigurationError):
            small_cache(policy=EvictionPolicy.RANDOM)

    def test_bad_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            small_cache(partition=WayPartition(network_ways=4), assoc=4)


class TestHitMiss:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(5) is None
        c.fill(5)
        assert c.lookup(5) is not None

    def test_stats(self):
        c = small_cache()
        c.lookup(1)
        c.fill(1)
        c.lookup(1)
        assert c.stats.misses == 1
        assert c.stats.hits == 1
        assert c.stats.hit_rate == pytest.approx(0.5)

    def test_contains_does_not_touch_stats(self):
        c = small_cache()
        c.fill(1)
        c.contains(1)
        c.contains(2)
        assert c.stats.accesses == 0


class TestLru:
    def test_lru_eviction_order(self):
        c = small_cache(assoc=2, nsets=1)
        c.fill(0)
        c.fill(1)
        c.fill(2)  # evicts 0
        assert not c.contains(0)
        assert c.contains(1) and c.contains(2)

    def test_hit_refreshes_recency(self):
        c = small_cache(assoc=2, nsets=1)
        c.fill(0)
        c.fill(1)
        c.lookup(0)  # 0 now MRU
        c.fill(2)  # evicts 1
        assert c.contains(0)
        assert not c.contains(1)

    def test_set_isolation(self):
        c = small_cache(assoc=1, nsets=4)
        for line in range(4):
            c.fill(line)
        assert all(c.contains(line) for line in range(4))

    def test_same_set_conflict(self):
        c = small_cache(assoc=1, nsets=4)
        c.fill(0)
        c.fill(4)  # maps to same set
        assert not c.contains(0)

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_lru_matches_reference_model(self, accesses):
        """Exact-LRU cache must agree with an explicit recency-list model."""
        c = small_cache(assoc=4, nsets=1)
        reference = []  # MRU at the end
        for line in accesses:
            meta = c.lookup(line)
            if meta is None:
                c.fill(line)
                if line in reference:
                    reference.remove(line)
                reference.append(line)
                if len(reference) > 4:
                    reference.pop(0)
            else:
                reference.remove(line)
                reference.append(line)
            assert sorted(reference) == sorted(
                line for line in range(8) if c.contains(line)
            )


class TestPrefetchedLines:
    def test_prefetch_hit_counted_once(self):
        c = small_cache()
        c.fill(3, prefetched=True)
        c.lookup(3)
        c.lookup(3)
        assert c.stats.prefetch_fills == 1
        assert c.stats.prefetch_hits == 1

    def test_penalty_exposed_then_cleared(self):
        c = small_cache()
        c.fill(3, prefetched=True, penalty=50.0)
        meta = c.lookup(3)
        assert meta.penalty == 50.0
        meta.penalty = 0.0  # caller consumes it
        assert c.lookup(3).penalty == 0.0

    def test_demand_refill_clears_prefetch_state(self):
        c = small_cache()
        c.fill(3, prefetched=True, penalty=50.0)
        c.fill(3)  # demand fill
        meta = c.lookup(3)
        assert meta.penalty == 0.0
        assert c.stats.prefetch_hits == 0


class TestPartition:
    def _cache(self):
        return small_cache(assoc=4, nsets=1, partition=WayPartition(network_ways=2))

    def test_default_fill_cannot_evict_protected_network(self):
        c = self._cache()
        c.fill(0, CLS_NETWORK)
        c.fill(1, CLS_NETWORK)
        for line in range(2, 8):
            c.fill(line, CLS_DEFAULT)
        assert c.contains(0) and c.contains(1)
        assert c.occupancy(CLS_NETWORK) == 2

    def test_network_fill_can_evict_anything(self):
        c = self._cache()
        for line in range(4):
            c.fill(line, CLS_DEFAULT)
        c.fill(10, CLS_NETWORK)
        assert c.contains(10)
        assert c.occupancy() == 4

    def test_network_beyond_share_is_evictable(self):
        c = self._cache()
        for line in range(4):
            c.fill(line, CLS_NETWORK)  # network over-occupies all ways
        c.fill(10, CLS_DEFAULT)  # may evict the excess network line
        assert c.contains(10)

    def test_all_network_set_default_fill_evicts_oldest(self):
        # When network data over-occupies the whole set (beyond its reserved
        # share), a default-class fill falls through to plain recency: the
        # *oldest* network line is the victim, not an arbitrary one.
        c = self._cache()
        for line in range(4):
            c.fill(line, CLS_NETWORK)
        c.fill(10, CLS_DEFAULT)
        assert not c.contains(0)  # oldest network line went
        assert c.contains(1) and c.contains(2) and c.contains(3)
        assert c.recency(0) == [1, 2, 3, 10]


class TestFlushInvalidate:
    def test_flush_empties(self):
        c = small_cache()
        for line in range(10):
            c.fill(line)
        c.flush()
        assert c.occupancy() == 0
        assert c.stats.flushes == 1

    def test_fill_after_flush_works(self):
        c = small_cache()
        c.fill(1)
        c.flush()
        c.fill(2)
        assert c.contains(2) and not c.contains(1)

    def test_invalidate(self):
        c = small_cache()
        c.fill(1)
        assert c.invalidate(1) is True
        assert c.invalidate(1) is False
        assert not c.contains(1)

    def test_snapshot_roundtrips_flushes(self):
        c = small_cache()
        c.fill(1)
        c.flush()
        c.flush()
        snap = c.stats.snapshot()
        assert snap["flushes"] == 2
        # snapshot covers every counter reset() clears.
        c.stats.reset()
        cleared = c.stats.snapshot()
        assert cleared["flushes"] == 0
        assert set(snap) == set(cleared)


class TestPolicies:
    def test_plru_approximates_recency(self):
        c = small_cache(assoc=4, nsets=1, policy=EvictionPolicy.PLRU)
        for line in range(4):
            c.fill(line)
        c.lookup(0)  # protect 0
        c.fill(4)
        assert c.contains(0)

    def test_plru_hit_promotes_to_middle(self):
        # Tree-PLRU approximation: a hit protects the line without making it
        # strictly MRU — it moves to the *middle* of the recency order.
        c = small_cache(assoc=4, nsets=1, policy=EvictionPolicy.PLRU)
        for line in range(4):
            c.fill(line)
        assert c.recency(0) == [0, 1, 2, 3]
        c.lookup(0)
        assert c.recency(0) == [1, 0, 2, 3]

    def test_lru_hit_promotes_to_mru(self):
        c = small_cache(assoc=4, nsets=1, policy=EvictionPolicy.LRU)
        for line in range(4):
            c.fill(line)
        c.lookup(0)
        assert c.recency(0) == [1, 2, 3, 0]

    def test_random_policy_runs(self):
        c = small_cache(
            assoc=2, nsets=1, policy=EvictionPolicy.RANDOM, rng=np.random.default_rng(0)
        )
        for line in range(10):
            c.fill(line)
        assert c.occupancy() == 2

    def test_random_policy_deterministic_with_seed(self):
        def run(seed):
            c = small_cache(
                assoc=2, nsets=1, policy=EvictionPolicy.RANDOM,
                rng=np.random.default_rng(seed),
            )
            for line in range(20):
                c.fill(line)
            return sorted(line for line in range(20) if c.contains(line))

        assert run(7) == run(7)

ALL_POLICIES = (EvictionPolicy.LRU, EvictionPolicy.PLRU, EvictionPolicy.RANDOM)


class TestPartitionFallbackAllNetwork:
    """The way-partition eviction *fallback*: a default-class fill into a set
    whose every way holds network-class data beyond the reserved share must
    fall back to the plain policy victim (no non-network candidate exists),
    identically on both kernel backends under every eviction policy.
    """

    def _overfilled(self, cache_cls, policy):
        c = backend_cache(
            cache_cls, assoc=4, nsets=1, policy=policy,
            partition=WayPartition(network_ways=2),
        )
        for line in range(4):
            c.fill(line, CLS_NETWORK)  # network over-occupies the whole set
        return c

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    @pytest.mark.parametrize("policy", (EvictionPolicy.LRU, EvictionPolicy.PLRU))
    def test_fallback_evicts_recency_head(self, cache_cls, policy):
        c = self._overfilled(cache_cls, policy)
        c.fill(10, CLS_DEFAULT)
        assert c.contains(10)
        assert not c.contains(0)  # head of recency order, not an arbitrary line
        assert c.recency(0) == [1, 2, 3, 10]
        assert c.occupancy(CLS_NETWORK) == 3
        assert c.stats.evictions == 1

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_fallback_always_admits_the_fill(self, cache_cls, policy):
        c = self._overfilled(cache_cls, policy)
        c.fill(10, CLS_DEFAULT)
        assert c.contains(10)
        assert c.occupancy() == 4
        assert c.occupancy(CLS_NETWORK) == 3
        assert c.occupancy(CLS_DEFAULT) == 1

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_fallback_victim_identical_across_backends(self, policy):
        def survivors(cache_cls):
            c = self._overfilled(cache_cls, policy)
            c.fill(10, CLS_DEFAULT)
            return sorted(line for line in range(11) if c.contains(line))

        assert survivors(SetAssociativeCache) == survivors(SoACache)

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    def test_fallback_random_is_seed_deterministic(self, cache_cls):
        def survivors():
            c = self._overfilled(cache_cls, EvictionPolicy.RANDOM)
            c.fill(10, CLS_DEFAULT)
            return sorted(line for line in range(11) if c.contains(line))

        assert survivors() == survivors()

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_within_share_network_stays_protected(self, cache_cls, policy):
        # Contrast case: while the network share is *not* exceeded, the scan
        # must keep skipping network lines no matter the policy/backend.
        c = backend_cache(
            cache_cls, assoc=4, nsets=1, policy=policy,
            partition=WayPartition(network_ways=2),
        )
        c.fill(0, CLS_NETWORK)
        c.fill(1, CLS_NETWORK)
        for line in range(2, 8):
            c.fill(line, CLS_DEFAULT)
        assert c.contains(0) and c.contains(1)
        assert c.occupancy(CLS_NETWORK) == 2

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_one_excess_network_line_is_fair_game(self, cache_cls, policy):
        # Exactly one network line beyond the share: the protected scan no
        # longer applies, so the policy victim may be (and under LRU/PLRU,
        # is) a network line even though default lines are present.
        c = backend_cache(
            cache_cls, assoc=4, nsets=1, policy=policy,
            partition=WayPartition(network_ways=2),
        )
        for line in range(3):
            c.fill(line, CLS_NETWORK)  # one over the 2-way share
        c.fill(3, CLS_DEFAULT)
        evictions_before = c.stats.evictions
        c.fill(10, CLS_DEFAULT)
        assert c.contains(10)
        assert c.stats.evictions == evictions_before + 1
        assert c.occupancy() == 4


class TestOccupancyDirtyTracking:
    """Satellite: occupancy scans only dirty (non-empty) sets, and the dirty
    index is pruned when invalidation empties a set — on both backends."""

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    def test_invalidate_prunes_emptied_set(self, cache_cls):
        c = backend_cache(cache_cls, assoc=2, nsets=4)
        c.fill(0)  # set 0
        c.fill(1)  # set 1
        c.fill(5)  # set 1 again
        assert c._dirty == {0, 1}
        assert c.invalidate(0) is True
        assert c._dirty == {1}  # set 0 emptied -> pruned
        assert c.invalidate(1) is True
        assert c._dirty == {1}  # set 1 still holds line 5
        assert c.occupancy() == 1

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    def test_occupancy_correct_after_pruning(self, cache_cls):
        c = backend_cache(cache_cls, assoc=2, nsets=4)
        for line in range(8):
            c.fill(line, CLS_NETWORK if line % 2 else CLS_DEFAULT)
        for line in range(4):
            c.invalidate(line)
        assert c.occupancy() == 4
        assert c.occupancy(CLS_NETWORK) == 2
        assert c.occupancy(CLS_DEFAULT) == 2

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    def test_flush_clears_dirty_index(self, cache_cls):
        c = backend_cache(cache_cls, assoc=2, nsets=4)
        for line in range(8):
            c.fill(line)
        assert c._dirty
        c.flush()
        assert c._dirty == set()
        assert c.occupancy() == 0

    @pytest.mark.parametrize("cache_cls", BACKENDS, ids=BACKEND_IDS)
    def test_eviction_keeps_replaced_set_dirty(self, cache_cls):
        # A fill that evicts replaces rather than empties: the set must stay
        # dirty and occupancy must still count it.
        c = backend_cache(cache_cls, assoc=1, nsets=2)
        c.fill(0)
        c.fill(2)  # same set, evicts 0
        assert c._dirty == {0}
        assert c.occupancy() == 1
