"""Tests for the multi-core memory hierarchy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import CLS_DEFAULT, CLS_NETWORK, WayPartition
from repro.mem.hierarchy import MemoryHierarchy, NetworkCacheConfig
from repro.mem.result import AccessResult


def tiny_hierarchy(**kw):
    defaults = dict(
        n_cores=2,
        l1_size=1024,
        l1_assoc=2,
        l1_latency=4.0,
        l2_size=4096,
        l2_assoc=4,
        l2_latency=12.0,
        l3_size=64 * 1024,
        l3_assoc=16,
        l3_latency=30.0,
        dram_latency=200.0,
        l1_prefetcher_factory=list,
        l2_prefetcher_factory=list,
    )
    defaults.update(kw)
    return MemoryHierarchy(**defaults)


class TestDemandPath:
    def test_cold_access_costs_dram(self):
        h = tiny_hierarchy()
        assert h.access(0, 0x1000, 8) == pytest.approx(200.0)

    def test_second_access_hits_l1(self):
        h = tiny_hierarchy()
        h.access(0, 0x1000, 8)
        assert h.access(0, 0x1000, 8) == pytest.approx(4.0)

    def test_fill_is_inclusive_up_the_levels(self):
        h = tiny_hierarchy()
        h.access(0, 0x1000, 8)
        line = 0x1000 >> 6
        assert h.cores[0].l1.contains(line)
        assert h.cores[0].l2.contains(line)
        assert h.l3.contains(line)

    def test_l3_hit_after_other_core_access(self):
        h = tiny_hierarchy()
        h.access(1, 0x1000, 8)  # core 1 pulls into shared L3
        assert h.access(0, 0x1000, 8) == pytest.approx(30.0)

    def test_multi_line_access_charges_per_line(self):
        h = tiny_hierarchy()
        assert h.access(0, 0x1000, 128) == pytest.approx(400.0)

    def test_straddling_access(self):
        h = tiny_hierarchy()
        assert h.access(0, 0x1000 + 60, 8) == pytest.approx(400.0)

    def test_zero_bytes_free(self):
        h = tiny_hierarchy()
        assert h.access(0, 0x1000, 0) == 0.0

    def test_needs_at_least_one_core(self):
        with pytest.raises(ConfigurationError):
            tiny_hierarchy(n_cores=0)

    def test_bad_coverage_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_hierarchy(dram_stream_coverage=1.5)


class TestWrites:
    def test_write_fills_without_latency(self):
        h = tiny_hierarchy()
        lines = h.write(0, 0x1000, 8)
        assert lines == 1.0
        assert h.access(0, 0x1000, 8) == pytest.approx(4.0)

    def test_write_line_count(self):
        h = tiny_hierarchy()
        assert h.write(0, 0x1000, 129) == 3.0


class TestHeaterPath:
    def test_touch_fills_shared_l3_only_for_other_cores(self):
        h = tiny_hierarchy()
        touched = h.touch_shared(1, 0x2000, 256)
        assert touched == 4
        # Matching core 0 sees an L3 hit, not its private caches.
        assert h.access(0, 0x2000, 8) == pytest.approx(30.0)

    def test_touch_refreshes_recency(self):
        h = tiny_hierarchy(l3_size=2 * 16 * 64, l3_assoc=16)  # 2 sets
        h.touch_shared(1, 0x0, 64)
        line = 0
        # Fill the same set with conflicting lines; re-touching keeps ours.
        for i in range(1, 16):
            h.touch_shared(1, i * 2 * 64, 64)
            h.touch_shared(1, 0x0, 64)
        assert h.l3.contains(line)


class TestFlush:
    def test_flush_clears_everything(self):
        h = tiny_hierarchy()
        h.access(0, 0x1000, 8)
        h.flush()
        assert h.access(0, 0x1000, 8) == pytest.approx(200.0)

    def test_flush_respects_partition(self):
        h = tiny_hierarchy(partition=WayPartition(network_ways=4))
        h.access(0, 0x1000, 8, CLS_NETWORK)
        h.access(0, 0x8000, 8, CLS_DEFAULT)
        h.flush()
        line = 0x1000 >> 6
        assert h.l3.contains(line)  # protected network line survives
        assert not h.l3.contains(0x8000 >> 6)
        # Private caches are cleared regardless.
        assert not h.cores[0].l1.contains(line)
        assert h.access(0, 0x1000, 8, CLS_NETWORK) == pytest.approx(30.0)

    def test_flush_without_protection_clears_l3(self):
        h = tiny_hierarchy(partition=WayPartition(network_ways=4))
        h.access(0, 0x1000, 8, CLS_NETWORK)
        h.flush(respect_protection=False)
        assert not h.l3.contains(0x1000 >> 6)


class TestNetworkCache:
    def test_network_access_served_by_netcache(self):
        h = tiny_hierarchy(network_cache=NetworkCacheConfig(size_bytes=2048, latency=4.0))
        h.access(0, 0x1000, 8, CLS_NETWORK)
        h.flush()  # netcache survives the flush
        assert h.access(0, 0x1000, 8, CLS_NETWORK) == pytest.approx(4.0)

    def test_default_class_bypasses_netcache(self):
        h = tiny_hierarchy(network_cache=NetworkCacheConfig(size_bytes=2048, latency=4.0))
        h.access(0, 0x1000, 8, CLS_DEFAULT)
        h.flush()
        assert h.access(0, 0x1000, 8, CLS_DEFAULT) == pytest.approx(200.0)

    def test_netcache_capacity_is_tiny(self):
        h = tiny_hierarchy(network_cache=NetworkCacheConfig(size_bytes=2048, latency=4.0))
        # 2 KiB = 32 lines; touching 64 lines thrashes it.
        for i in range(64):
            h.access(0, 0x1000 + i * 64, 8, CLS_NETWORK)
        h.flush()
        cost = h.access(0, 0x1000, 8, CLS_NETWORK)
        assert cost > 4.0  # first lines were evicted by later ones

    def test_too_small_netcache_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkCacheConfig(size_bytes=32).build(0)


class TestTransactions:
    def test_access_tx_attributes_cold_lines_to_dram(self):
        h = tiny_hierarchy()
        tx = h.access_tx(0, 0x1000, 128)
        assert tx.lines == 2
        assert tx.dram_fills == 2
        assert tx.l1_hits == 0
        assert tx.cycles == pytest.approx(400.0)

    def test_access_tx_attributes_warm_lines_to_l1(self):
        h = tiny_hierarchy()
        h.access(0, 0x1000, 8)
        tx = h.access_tx(0, 0x1000, 8)
        assert tx.l1_hits == 1 and tx.dram_fills == 0
        assert tx.hit_rate == 1.0

    def test_access_tx_levels_sum_to_lines(self):
        h = tiny_hierarchy()
        h.access(1, 0x1000, 8)  # shared L3 holds the first line
        tx = h.access_tx(0, 0x1000, 80)
        assert tx.l3_hits == 1 and tx.dram_fills == 1
        assert tx.netcache_hits + tx.l1_hits + tx.l2_hits + tx.l3_hits + tx.dram_fills == tx.lines

    def test_access_tx_zero_bytes(self):
        h = tiny_hierarchy()
        tx = h.access_tx(0, 0x1000, 0)
        assert tx.lines == 0 and tx.cycles == 0.0

    def test_access_tx_reuses_out(self):
        h = tiny_hierarchy()
        scratch = AccessResult()
        tx = h.access_tx(0, 0x1000, 8, out=scratch)
        assert tx is scratch
        assert tx.dram_fills == 1
        tx2 = h.access_tx(0, 0x2000, 8, out=scratch)
        assert tx2 is scratch and tx2.lines == 1  # reset, not accumulated

    def test_netcache_hits_attributed(self):
        h = tiny_hierarchy(network_cache=NetworkCacheConfig(size_bytes=2048, latency=4.0))
        h.access(0, 0x1000, 8, CLS_NETWORK)
        h.flush()
        tx = h.access_tx(0, 0x1000, 8, CLS_NETWORK)
        assert tx.netcache_hits == 1
        assert tx.cycles == pytest.approx(4.0)

    def test_write_tx_counts_lines(self):
        h = tiny_hierarchy()
        tx = h.write_tx(0, 0x1000, 129)
        assert tx.lines == 3
        assert h.write(0, 0x2000, 129) == 3.0

    def test_touch_shared_tx_splits_refresh_vs_install(self):
        h = tiny_hierarchy()
        tx = h.touch_shared_tx(1, 0x2000, 256)
        assert tx.lines == 4
        assert tx.dram_fills == 4 and tx.l3_hits == 0  # cold: all installed
        tx = h.touch_shared_tx(1, 0x2000, 256)
        assert tx.l3_hits == 4 and tx.dram_fills == 0  # warm: all refreshed


class TestBatchedEquivalence:
    """access_lines must be *bit-identical* to the seed's scalar loop."""

    CONFIGS = {
        "plain": {},
        "plru": {"policy": "plru"},
        "random": {"policy": "random"},
        "partition": {"partition": WayPartition(network_ways=4)},
        "netcache": {"network_cache": NetworkCacheConfig(size_bytes=2048, latency=4.0)},
    }

    @staticmethod
    def _stream(seed):
        rng = np.random.default_rng(seed)
        stream = []
        for _ in range(400):
            addr = int(rng.integers(0, 1 << 18))
            nbytes = int(rng.integers(1, 300))
            cls = CLS_NETWORK if rng.random() < 0.5 else CLS_DEFAULT
            stream.append((addr, nbytes, cls))
        return stream

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_bit_identical_to_legacy(self, name):
        kw = dict(self.CONFIGS[name])
        stream = self._stream(seed=3)

        def run(use_batched):
            h = tiny_hierarchy(rng=np.random.default_rng(11), **kw)
            totals = []
            if use_batched:
                tx = AccessResult()
                for i, (addr, nbytes, cls) in enumerate(stream):
                    first = addr >> 6
                    last = (addr + nbytes - 1) >> 6
                    totals.append(h.access_lines(0, first, last, cls, tx).cycles)
                    if i % 97 == 0:
                        h.flush()
            else:
                for i, (addr, nbytes, cls) in enumerate(stream):
                    totals.append(h.access_legacy(0, addr, nbytes, cls))
                    if i % 97 == 0:
                        h.flush()
            return totals, h.stats()

        batched_cycles, batched_stats = run(True)
        legacy_cycles, legacy_stats = run(False)
        # repr-level equality: same float accumulation order, not "approx".
        assert list(map(repr, batched_cycles)) == list(map(repr, legacy_cycles))
        assert batched_stats == legacy_stats


class TestStats:
    def test_stats_shape(self):
        h = tiny_hierarchy()
        h.access(0, 0x1000, 8)
        stats = h.stats()
        assert stats["l3"]["misses"] == 1
        assert stats["l1.0"]["misses"] == 1
        assert stats["demand_accesses"] == 1

    def test_reset_stats(self):
        h = tiny_hierarchy()
        h.access(0, 0x1000, 8)
        h.reset_stats()
        assert h.stats()["demand_accesses"] == 0
        assert h.stats()["l3"]["misses"] == 0
