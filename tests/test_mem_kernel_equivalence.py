"""Cross-backend kernel equivalence: soa x vec x reference, bit-identical.

The structure-of-arrays kernel (:mod:`repro.mem.soa`), the numpy-vectorized
kernel (:mod:`repro.mem.vec`) and the reference dict kernel
(:mod:`repro.mem.cache`) are three implementations of the *same* simulated
machine. This suite drives one hierarchy per backend through an identical
seeded stream of mixed operations (demand line runs, network-class
accesses, write-allocate stores, heater touches, full flushes) in lockstep
and demands bit-identical outcomes at every step:

* every :meth:`~repro.mem.result.AccessResult.signature` (``repr``-encoded
  floats: cycle totals must match to the last bit, not approximately);
* every per-level counter (hits/misses/evictions/prefetch fills+hits);
* occupancy, per-class occupancy, and full recency order of every set of
  every cache — so eviction *choices*, not just eviction *counts*, agree;
* the shared RNG consumption contract (all backends draw the same
  variates in the same order, or RANDOM-policy runs diverge immediately).

Scenarios cover the full policy matrix (LRU / tree-PLRU / RANDOM) crossed
with way-partitioning and the dedicated network cache, on deliberately
tiny geometries so sets overflow and eviction paths actually run. The vec
kernel's span thresholds are pinned to 1 for the drive, so its vectorized
probe/stamp/argmin primitives — not just its scalar fallbacks — face the
lockstep comparison on every op.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.mem.hierarchy as hierarchy_mod
from repro.mem.cache import (
    CLS_DEFAULT,
    CLS_NETWORK,
    EvictionPolicy,
    SetAssociativeCache,
    WayPartition,
)
from repro.mem.hierarchy import MemoryHierarchy, NetworkCacheConfig
from repro.mem.kernel import KERNEL_REFERENCE, KERNEL_SOA, KERNEL_VEC
from repro.mem.soa import SoACache
from repro.mem.vec import VecCache

POLICIES = (EvictionPolicy.LRU, EvictionPolicy.PLRU, EvictionPolicy.RANDOM)

#: Tiny geometries: few sets, low associativity, so a short op stream
#: overflows sets and exercises every eviction/partition/flush path.
GEOMETRY = dict(
    n_cores=2,
    l1_size=4096,
    l1_assoc=4,
    l1_latency=4.0,
    l2_size=16384,
    l2_assoc=4,
    l2_latency=12.0,
    l3_size=65536,
    l3_assoc=8,
    l3_latency=30.0,
    dram_latency=200.0,
)

N_OPS = 400

#: Captured at import, before the threshold-pinning fixture runs.
_PRODUCTION_MIN_SPAN = hierarchy_mod._VEC_MIN_SPAN
_PRODUCTION_MIN_RUN = hierarchy_mod._VEC_MIN_RUN


@pytest.fixture(autouse=True)
def _vectorize_everything(monkeypatch):
    """Probe every span through the vec kernel's array primitives.

    The production thresholds route short transactions to the scalar SoA
    paths (numpy fixed costs dominate there); the tiny lockstep geometry
    would never reach them. Equivalence must hold at any threshold, so the
    suite pins both to 1.
    """
    monkeypatch.setattr(hierarchy_mod, "_VEC_MIN_SPAN", 1)
    monkeypatch.setattr(hierarchy_mod, "_VEC_MIN_RUN", 1)


def build_trio(policy, with_partition, with_netcache, seed=1234):
    """Three hierarchies, identical config, one per kernel backend.

    Each gets its *own* RNG constructed from the same seed: the equivalence
    contract includes drawing identical variate streams, so sharing one
    generator would hide consumption-order bugs.
    """
    def make(kernel):
        return MemoryHierarchy(
            policy=policy,
            partition=WayPartition(network_ways=2) if with_partition else None,
            network_cache=NetworkCacheConfig(size_bytes=2048) if with_netcache else None,
            rng=np.random.default_rng(seed),
            kernel=kernel,
            **GEOMETRY,
        )

    ref = make(KERNEL_REFERENCE)
    soa = make(KERNEL_SOA)
    vec = make(KERNEL_VEC)
    assert isinstance(ref.l3, SetAssociativeCache)
    assert isinstance(soa.l3, SoACache) and not isinstance(soa.l3, VecCache)
    assert isinstance(vec.l3, VecCache)
    return ref, (("soa", soa), ("vec", vec))


def caches_of(hier):
    """Every cache in the hierarchy, labelled, in a stable order."""
    out = [("l3", hier.l3)]
    for core in hier.cores:
        out.append((core.l1.name, core.l1))
        out.append((core.l2.name, core.l2))
        if core.netcache is not None:
            out.append((core.netcache.name, core.netcache))
    return out


def assert_states_equal(ref, other, label, context):
    """Full structural equality: stats, occupancy, and recency per set."""
    for (name, rc), (_, sc) in zip(caches_of(ref), caches_of(other)):
        for field in ("hits", "misses", "prefetch_fills", "prefetch_hits",
                      "evictions", "flushes"):
            rv, sv = getattr(rc.stats, field), getattr(sc.stats, field)
            assert rv == sv, f"{context}: {name}.{field}: ref={rv} {label}={sv}"
        assert rc.occupancy() == sc.occupancy(), f"{context}: {name} occupancy"
        for cls in (CLS_DEFAULT, CLS_NETWORK):
            assert rc.occupancy(cls) == sc.occupancy(cls), (
                f"{context}: {name} occupancy(cls={cls})"
            )
        for idx in range(rc.nsets):
            r_order, s_order = rc.recency(idx), sc.recency(idx)
            assert r_order == s_order, (
                f"{context}: {name} set {idx} recency: "
                f"ref={r_order} {label}={s_order}"
            )
        # The slab fast paths elide flag tests when _nflagged == 0, so the
        # counter must track the true flagged-slot population exactly.
        true_flagged = sum(1 for slot in sc._index.values() if sc._flag[slot])
        assert sc._nflagged == true_flagged, (
            f"{context}: {name} _nflagged={sc._nflagged} != {true_flagged}"
        )


def assert_all_equal(ref, others, context):
    for label, other in others:
        assert_states_equal(ref, other, label, context)


def drive(ref, others, *, seed=99, n_ops=N_OPS):
    """One seeded op stream applied to all hierarchies in lockstep.

    The mix is weighted toward demand line runs (the hot path) but includes
    every mutating entry point; addresses reuse a small footprint so lines
    collide, re-fill, and get evicted rather than streaming cold forever.
    """
    rng = np.random.default_rng(seed)
    has_netcache = ref.cores[0].netcache is not None
    for op_i in range(n_ops):
        op = rng.integers(10)
        core = int(rng.integers(ref.n_cores))
        addr = int(rng.integers(0, 1 << 18)) & ~0x3F
        nbytes = int(rng.integers(1, 8)) * 64
        context = f"op {op_i} (kind {op}, core {core}, addr {addr:#x})"
        if op < 5:  # demand run, default class
            first, last = addr >> 6, (addr + nbytes - 1) >> 6
            r = ref.access_lines(core, first, last).signature()
            for label, h in others:
                s = h.access_lines(core, first, last).signature()
                assert r == s, f"{context} [{label}]"
        elif op < 7:  # demand run, network class (netcache path when present)
            first, last = addr >> 6, (addr + nbytes - 1) >> 6
            r = ref.access_lines(core, first, last, CLS_NETWORK).signature()
            for label, h in others:
                s = h.access_lines(core, first, last, CLS_NETWORK).signature()
                assert r == s, f"{context} [{label}]"
        elif op == 7:  # write-allocate store
            cls = CLS_NETWORK if has_netcache else CLS_DEFAULT
            r = ref.write_tx(core, addr, nbytes, cls).signature()
            for label, h in others:
                s = h.write_tx(core, addr, nbytes, cls).signature()
                assert r == s, f"{context} [{label}]"
        elif op == 8:  # heater touch (refresh/install split)
            r = ref.touch_shared_tx(core, addr, nbytes).signature()
            for label, h in others:
                s = h.touch_shared_tx(core, addr, nbytes).signature()
                assert r == s, f"{context} [{label}]"
        else:  # occasional flush (protection-respecting variant included)
            respect = bool(rng.integers(2))
            ref.flush(respect_protection=respect)
            for _, h in others:
                h.flush(respect_protection=respect)
        if op_i % 50 == 0:
            assert_all_equal(ref, others, context)
    assert_all_equal(ref, others, "final")
    for label, h in others:
        assert ref.stats() == h.stats(), label


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("with_partition", (False, True), ids=["nopart", "part"])
@pytest.mark.parametrize("with_netcache", (False, True), ids=["nonetc", "netc"])
def test_kernels_bit_identical(policy, with_partition, with_netcache):
    ref, others = build_trio(policy, with_partition, with_netcache)
    drive(ref, others)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernels_identical_after_full_flush(policy):
    """An unprotected flush must leave all backends equivalent mid-stream."""
    ref, others = build_trio(policy, True, True)
    drive(ref, others, n_ops=100)
    ref.flush(respect_protection=False)
    for _, h in others:
        h.flush(respect_protection=False)
    assert_all_equal(ref, others, "post-flush")
    drive(ref, others, seed=7, n_ops=100)


# -- the scan-run entry point (access_run) --------------------------------


def _lines_of(spec):
    """A (lines, vis) pair from a compact (line, visits) spec."""
    lines = [ln for ln, _ in spec]
    vis = [v for _, v in spec]
    return lines, vis, sum(vis)


@pytest.mark.parametrize("policy", (EvictionPolicy.LRU, EvictionPolicy.RANDOM))
@pytest.mark.parametrize(
    "gapped", (False, True), ids=["contiguous", "gapped"]
)
def test_access_run_lockstep(policy, gapped):
    """access_run: same accept/reject decision and identical state after.

    Covers both vec membership paths (the count-only contiguous probe and
    the searchsorted gapped probe), plus the all-or-nothing contract: a
    rejected run must leave every backend's state untouched and a
    subsequent scalar replay must still agree.
    """
    ref, others = build_trio(policy, False, False)
    all_h = [("reference", ref)] + list(others)
    step = 2 if gapped else 1
    resident = [(8 + i * step, 1 + (i % 3)) for i in range(24)]
    lines, vis, total = _lines_of(resident)
    # Warm every line, then run over them: all backends must accept.
    for _, h in all_h:
        for ln in lines:
            h.access_lines(0, ln, ln)
    accepted = {label: h.access_run(0, lines, vis, total) for label, h in all_h}
    assert all(accepted.values()), accepted
    assert_all_equal(ref, others, f"run accepted ({policy}, gapped={gapped})")
    # A run touching a non-resident line must be rejected by everyone,
    # mutating nothing.
    cold = lines + [lines[-1] + 64]
    cold_vis = vis + [2]
    rejected = {
        label: h.access_run(0, cold, cold_vis, total + 2) for label, h in all_h
    }
    assert not any(rejected.values()), rejected
    assert_all_equal(ref, others, "run rejected")
    for label, h in all_h:
        assert ref.stats() == h.stats(), label


def test_access_run_rejects_flagged_lines():
    """A pending prefetch flag anywhere in the run forces the scalar replay."""
    ref, others = build_trio(EvictionPolicy.LRU, False, False)
    all_h = [("reference", ref)] + list(others)
    lines = list(range(32, 56))
    vis = [1] * len(lines)
    for _, h in all_h:
        for ln in lines:
            h.access_lines(0, ln, ln)
        # Plant a prefetched fill inside the run's span (a refill of a
        # resident line keeps its clean state, so drop it first).
        h.cores[0].l1.invalidate(lines[7])
        h.cores[0].l1.fill(lines[7], CLS_DEFAULT, prefetched=True, penalty=3.0)
    rejected = {
        label: h.access_run(0, lines, vis, len(lines)) for label, h in all_h
    }
    assert not any(rejected.values()), rejected
    assert_all_equal(ref, others, "flagged run rejected")


def test_wide_warm_spans_hit_the_vector_path(monkeypatch):
    """Production thresholds, default L1: a warm 256-line span qualifies
    for the vec fast path and still matches the other backends bit-for-bit."""
    monkeypatch.setattr(hierarchy_mod, "_VEC_MIN_SPAN", _PRODUCTION_MIN_SPAN)
    monkeypatch.setattr(hierarchy_mod, "_VEC_MIN_RUN", _PRODUCTION_MIN_RUN)
    assert 256 >= _PRODUCTION_MIN_SPAN
    wide = dict(GEOMETRY, l1_size=32 * 1024, l1_assoc=8)

    def make(kernel):
        return MemoryHierarchy(policy=EvictionPolicy.LRU, kernel=kernel, **wide)

    trio = [(k, make(k)) for k in (KERNEL_REFERENCE, KERNEL_SOA, KERNEL_VEC)]
    first, last = 0, 255  # 16 KiB span, fits the 512-line L1
    for _ in range(4):
        sigs = {
            label: h.access_lines(0, first, last).signature()
            for label, h in trio
        }
        assert len(set(sigs.values())) == 1, sigs
    ref = trio[0][1]
    assert_all_equal(ref, [trio[1], trio[2]], "wide warm spans")
    for label, h in trio[1:]:
        assert ref.stats() == h.stats(), label


def test_default_kernel_is_soa(monkeypatch):
    from repro.mem.kernel import MEM_KERNEL_ENV

    monkeypatch.delenv(MEM_KERNEL_ENV, raising=False)
    h = MemoryHierarchy(**GEOMETRY)
    assert h.kernel == KERNEL_SOA
    assert isinstance(h.l3, SoACache)


@pytest.mark.parametrize(
    "kernel, cls_",
    ((KERNEL_REFERENCE, SetAssociativeCache), (KERNEL_VEC, VecCache)),
)
def test_env_selects_kernel(monkeypatch, kernel, cls_):
    from repro.mem.kernel import MEM_KERNEL_ENV

    monkeypatch.setenv(MEM_KERNEL_ENV, kernel)
    h = MemoryHierarchy(**GEOMETRY)
    assert h.kernel == kernel
    assert isinstance(h.l3, cls_)
