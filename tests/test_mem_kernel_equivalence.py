"""Cross-backend kernel equivalence: SoA vs reference, bit-identical.

The structure-of-arrays kernel (:mod:`repro.mem.soa`) and the reference
dict kernel (:mod:`repro.mem.cache`) are two implementations of the *same*
simulated machine. This suite drives a pair of hierarchies — one per
backend — through an identical seeded stream of mixed operations (demand
line runs, network-class accesses, write-allocate stores, heater touches,
full flushes) and demands bit-identical outcomes at every step:

* every :meth:`~repro.mem.result.AccessResult.signature` (``repr``-encoded
  floats: cycle totals must match to the last bit, not approximately);
* every per-level counter (hits/misses/evictions/prefetch fills+hits);
* occupancy, per-class occupancy, and full recency order of every set of
  every cache — so eviction *choices*, not just eviction *counts*, agree;
* the shared RNG consumption contract (both backends draw the same
  variates in the same order, or RANDOM-policy runs diverge immediately).

Scenarios cover the full policy matrix (LRU / tree-PLRU / RANDOM) crossed
with way-partitioning and the dedicated network cache, on deliberately
tiny geometries so sets overflow and eviction paths actually run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mem.cache import (
    CLS_DEFAULT,
    CLS_NETWORK,
    EvictionPolicy,
    SetAssociativeCache,
    WayPartition,
)
from repro.mem.hierarchy import MemoryHierarchy, NetworkCacheConfig
from repro.mem.kernel import KERNEL_REFERENCE, KERNEL_SOA
from repro.mem.soa import SoACache

POLICIES = (EvictionPolicy.LRU, EvictionPolicy.PLRU, EvictionPolicy.RANDOM)

#: Tiny geometries: few sets, low associativity, so a short op stream
#: overflows sets and exercises every eviction/partition/flush path.
GEOMETRY = dict(
    n_cores=2,
    l1_size=4096,
    l1_assoc=4,
    l1_latency=4.0,
    l2_size=16384,
    l2_assoc=4,
    l2_latency=12.0,
    l3_size=65536,
    l3_assoc=8,
    l3_latency=30.0,
    dram_latency=200.0,
)

N_OPS = 400


def build_pair(policy, with_partition, with_netcache, seed=1234):
    """Two hierarchies, identical config, one per kernel backend.

    Each gets its *own* RNG constructed from the same seed: the equivalence
    contract includes drawing identical variate streams, so sharing one
    generator would hide consumption-order bugs.
    """
    def make(kernel):
        return MemoryHierarchy(
            policy=policy,
            partition=WayPartition(network_ways=2) if with_partition else None,
            network_cache=NetworkCacheConfig(size_bytes=2048) if with_netcache else None,
            rng=np.random.default_rng(seed),
            kernel=kernel,
            **GEOMETRY,
        )

    ref = make(KERNEL_REFERENCE)
    soa = make(KERNEL_SOA)
    assert isinstance(ref.l3, SetAssociativeCache)
    assert isinstance(soa.l3, SoACache)
    return ref, soa


def caches_of(hier):
    """Every cache in the hierarchy, labelled, in a stable order."""
    out = [("l3", hier.l3)]
    for core in hier.cores:
        out.append((core.l1.name, core.l1))
        out.append((core.l2.name, core.l2))
        if core.netcache is not None:
            out.append((core.netcache.name, core.netcache))
    return out


def assert_states_equal(ref, soa, context):
    """Full structural equality: stats, occupancy, and recency per set."""
    for (name, rc), (_, sc) in zip(caches_of(ref), caches_of(soa)):
        for field in ("hits", "misses", "prefetch_fills", "prefetch_hits",
                      "evictions", "flushes"):
            rv, sv = getattr(rc.stats, field), getattr(sc.stats, field)
            assert rv == sv, f"{context}: {name}.{field}: ref={rv} soa={sv}"
        assert rc.occupancy() == sc.occupancy(), f"{context}: {name} occupancy"
        for cls in (CLS_DEFAULT, CLS_NETWORK):
            assert rc.occupancy(cls) == sc.occupancy(cls), (
                f"{context}: {name} occupancy(cls={cls})"
            )
        for idx in range(rc.nsets):
            r_order, s_order = rc.recency(idx), sc.recency(idx)
            assert r_order == s_order, (
                f"{context}: {name} set {idx} recency: ref={r_order} soa={s_order}"
            )
        # The SoA fast path elides flag tests when _nflagged == 0, so the
        # counter must track the true flagged-slot population exactly.
        true_flagged = sum(1 for slot in sc._index.values() if sc._flag[slot])
        assert sc._nflagged == true_flagged, (
            f"{context}: {name} _nflagged={sc._nflagged} != {true_flagged}"
        )


def drive(ref, soa, *, seed=99, n_ops=N_OPS):
    """One seeded op stream applied to both hierarchies in lockstep.

    The mix is weighted toward demand line runs (the hot path) but includes
    every mutating entry point; addresses reuse a small footprint so lines
    collide, re-fill, and get evicted rather than streaming cold forever.
    """
    rng = np.random.default_rng(seed)
    has_netcache = ref.cores[0].netcache is not None
    for op_i in range(n_ops):
        op = rng.integers(10)
        core = int(rng.integers(ref.n_cores))
        addr = int(rng.integers(0, 1 << 18)) & ~0x3F
        nbytes = int(rng.integers(1, 8)) * 64
        context = f"op {op_i} (kind {op}, core {core}, addr {addr:#x})"
        if op < 5:  # demand run, default class
            first, last = addr >> 6, (addr + nbytes - 1) >> 6
            r = ref.access_lines(core, first, last)
            s = soa.access_lines(core, first, last)
            assert r.signature() == s.signature(), context
        elif op < 7:  # demand run, network class (netcache path when present)
            first, last = addr >> 6, (addr + nbytes - 1) >> 6
            r = ref.access_lines(core, first, last, CLS_NETWORK)
            s = soa.access_lines(core, first, last, CLS_NETWORK)
            assert r.signature() == s.signature(), context
        elif op == 7:  # write-allocate store
            r = ref.write_tx(core, addr, nbytes, CLS_NETWORK if has_netcache else CLS_DEFAULT)
            s = soa.write_tx(core, addr, nbytes, CLS_NETWORK if has_netcache else CLS_DEFAULT)
            assert r.signature() == s.signature(), context
        elif op == 8:  # heater touch (refresh/install split)
            r = ref.touch_shared_tx(core, addr, nbytes)
            s = soa.touch_shared_tx(core, addr, nbytes)
            assert r.signature() == s.signature(), context
        else:  # occasional flush (protection-respecting variant included)
            respect = bool(rng.integers(2))
            ref.flush(respect_protection=respect)
            soa.flush(respect_protection=respect)
        if op_i % 50 == 0:
            assert_states_equal(ref, soa, context)
    assert_states_equal(ref, soa, "final")
    assert ref.stats() == soa.stats()


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("with_partition", (False, True), ids=["nopart", "part"])
@pytest.mark.parametrize("with_netcache", (False, True), ids=["nonetc", "netc"])
def test_kernels_bit_identical(policy, with_partition, with_netcache):
    ref, soa = build_pair(policy, with_partition, with_netcache)
    drive(ref, soa)


@pytest.mark.parametrize("policy", POLICIES)
def test_kernels_identical_after_full_flush(policy):
    """An unprotected flush must leave both backends equivalent mid-stream."""
    ref, soa = build_pair(policy, True, True)
    drive(ref, soa, n_ops=100)
    ref.flush(respect_protection=False)
    soa.flush(respect_protection=False)
    assert_states_equal(ref, soa, "post-flush")
    drive(ref, soa, seed=7, n_ops=100)


def test_default_kernel_is_soa(monkeypatch):
    from repro.mem.kernel import MEM_KERNEL_ENV

    monkeypatch.delenv(MEM_KERNEL_ENV, raising=False)
    h = MemoryHierarchy(**GEOMETRY)
    assert h.kernel == KERNEL_SOA
    assert isinstance(h.l3, SoACache)


def test_env_selects_reference(monkeypatch):
    from repro.mem.kernel import MEM_KERNEL_ENV

    monkeypatch.setenv(MEM_KERNEL_ENV, KERNEL_REFERENCE)
    h = MemoryHierarchy(**GEOMETRY)
    assert h.kernel == KERNEL_REFERENCE
    assert isinstance(h.l3, SetAssociativeCache)
