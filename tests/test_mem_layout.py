"""Tests for cache-line address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.layout import (
    LINE_SIZE,
    align_up,
    line_of,
    line_span,
    lines_touched,
    page_of,
)


class TestLineOf:
    def test_first_line(self):
        assert line_of(0) == 0
        assert line_of(63) == 0

    def test_second_line(self):
        assert line_of(64) == 1

    def test_large_address(self):
        assert line_of(0x1000_0000) == 0x1000_0000 // 64


class TestLineSpan:
    def test_zero_bytes(self):
        assert line_span(0, 0) == 0

    def test_single_byte(self):
        assert line_span(10, 1) == 1

    def test_full_line_aligned(self):
        assert line_span(64, 64) == 1

    def test_straddle(self):
        assert line_span(60, 8) == 2

    def test_figure2_lla_node_is_one_line(self):
        # 8B indexes + 2x24B entries + 8B next pointer at a line boundary.
        assert line_span(0x1000, 64) == 1

    def test_baseline_entry_exceeds_line_when_misaligned(self):
        # A 40-byte baseline node placed mid-line straddles two lines.
        assert line_span(0x1030, 40) == 2

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=4096))
    def test_span_matches_enumeration(self, addr, nbytes):
        assert line_span(addr, nbytes) == len(list(lines_touched(addr, nbytes)))

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=4096))
    def test_lines_are_consecutive(self, addr, nbytes):
        lines = list(lines_touched(addr, nbytes))
        assert lines == list(range(lines[0], lines[0] + len(lines)))


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(65, 64) == 128

    def test_zero(self):
        assert align_up(0, 64) == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            align_up(10, 3)

    @given(st.integers(min_value=0, max_value=2**40), st.sampled_from([1, 2, 8, 64, 4096]))
    def test_result_is_aligned_and_minimal(self, value, alignment):
        out = align_up(value, alignment)
        assert out % alignment == 0
        assert out >= value
        assert out - value < alignment


class TestPageOf:
    def test_page_boundaries(self):
        assert page_of(4095) == 0
        assert page_of(4096) == 1

    def test_lines_per_page(self):
        assert 4096 // LINE_SIZE == 64
