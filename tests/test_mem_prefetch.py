"""Tests for the prefetcher models."""

from repro.mem.prefetch import (
    CHASE_TABLE_SIZE,
    PREFETCHER_CATALOGUE,
    PREFETCHER_MODES,
    STREAM_TABLE_SIZE,
    AdjacentPairPrefetcher,
    NextLinePrefetcher,
    PointerChasePrefetcher,
    Prefetcher,
    StreamerPrefetcher,
)


class TestNextLine:
    def test_miss_fetches_next(self):
        assert NextLinePrefetcher().observe(10, hit=False) == (11,)

    def test_hit_fetches_nothing(self):
        assert NextLinePrefetcher().observe(10, hit=True) == ()


class TestAdjacentPair:
    def test_even_line_fetches_odd_buddy(self):
        assert AdjacentPairPrefetcher().observe(10, hit=False) == (11,)

    def test_odd_line_fetches_even_buddy(self):
        assert AdjacentPairPrefetcher().observe(11, hit=False) == (10,)

    def test_hit_fetches_nothing(self):
        assert AdjacentPairPrefetcher().observe(10, hit=True) == ()


class TestStreamer:
    def test_needs_trigger_run(self):
        s = StreamerPrefetcher(trigger_run=2)
        assert s.observe(100, False) == ()  # first touch: learn
        out = s.observe(101, False)  # second ascending: trigger
        assert out  # prefetches ahead

    def test_prefetch_lines_are_ahead(self):
        s = StreamerPrefetcher(max_distance=4)
        s.observe(100, False)
        out = s.observe(101, False)
        assert all(line > 101 for line in out)

    def test_distance_ramps_to_max(self):
        s = StreamerPrefetcher(max_distance=4)
        s.observe(100, False)
        first = s.observe(101, False)
        second = s.observe(102, False)
        assert len(second) >= len(first)
        assert len(second) == 4

    def test_repeat_access_ignored(self):
        s = StreamerPrefetcher()
        s.observe(100, False)
        assert s.observe(100, False) == ()

    def test_descending_breaks_stream(self):
        s = StreamerPrefetcher()
        s.observe(100, False)
        s.observe(101, False)
        assert s.observe(50, False) == ()  # same page? different line far back
        # After the break the run must rebuild before prefetching resumes.
        assert s.observe(51, False) != () or True

    def test_max_step_gap_tolerance(self):
        tolerant = StreamerPrefetcher(max_step=4)
        strict = StreamerPrefetcher(max_step=1)
        for s in (tolerant, strict):
            s.observe(100, False)
        assert tolerant.observe(103, False) != ()
        assert strict.observe(103, False) == ()

    def test_streams_tracked_per_page(self):
        s = StreamerPrefetcher()
        s.observe(100, False)
        s.observe(1000, False)  # other page: does not disturb first stream
        assert s.observe(101, False) != ()

    def test_table_eviction(self):
        s = StreamerPrefetcher(table_size=2)
        s.observe(0 * 64, False)
        s.observe(1 * 64, False)
        s.observe(2 * 64, False)  # evicts page 0's stream
        assert len(s._streams) == 2

    def test_reset(self):
        s = StreamerPrefetcher()
        s.observe(100, False)
        s.observe(101, False)
        s.reset()
        assert s.observe(102, False) == ()  # must relearn

    def test_observes_hits_too(self):
        # Streams keep ramping on prefetched hits (hit=True).
        s = StreamerPrefetcher()
        s.observe(100, False)
        s.observe(101, True)
        out = s.observe(102, True)
        assert out


class TestPointerChase:
    def _traverse(self, pf, lines):
        out = []
        for line in lines:
            out.append(pf.observe(line, False))
        return out

    def test_learns_jump_edges_not_spatial_steps(self):
        pf = PointerChasePrefetcher(min_jump=2)
        self._traverse(pf, [100, 101, 102])  # +1 steps: spatial territory
        assert len(pf._succ) == 0
        self._traverse(pf, [200, 300, 250])  # jumps: pointer territory
        assert dict(pf._succ) == {102: 200, 200: 300, 300: 250}

    def test_learns_descending_jumps(self):
        # Long-lived arenas hand out nodes at descending addresses too.
        pf = PointerChasePrefetcher(min_jump=2)
        self._traverse(pf, [500, 400, 300])
        assert dict(pf._succ) == {500: 400, 400: 300}

    def test_first_traversal_proposes_nothing(self):
        pf = PointerChasePrefetcher()
        chain = [10, 90, 30, 170, 50]
        assert all(out == () for out in self._traverse(pf, chain))

    def test_second_traversal_chases_ahead(self):
        pf = PointerChasePrefetcher(depth=2)
        chain = [10, 90, 30, 170, 50]
        self._traverse(pf, chain)
        second = self._traverse(pf, chain)
        # Re-visiting node i proposes nodes i+1 and i+2 of the chain.
        assert second[0] == (90, 30)
        assert second[1] == (30, 170)
        assert second[2] == (170, 50)
        # The jump back to the chain head was itself recorded as an edge
        # (50 -> 10), so the tail proposals wrap around the loop.
        assert second[3] == (50, 10)

    def test_depth_bounds_run_ahead(self):
        chain = [10, 90, 30, 170, 50, 230]
        shallow = PointerChasePrefetcher(depth=1)
        deep = PointerChasePrefetcher(depth=4)
        for pf in (shallow, deep):
            self._traverse(pf, chain)
        assert shallow.observe(10, False) == (90,)
        assert deep.observe(10, False) == (90, 30, 170, 50)

    def test_table_lru_eviction(self):
        pf = PointerChasePrefetcher(table_size=2)
        self._traverse(pf, [10, 90, 30, 170])  # three edges into a 2-table
        assert len(pf._succ) == 2
        assert 10 not in pf._succ  # oldest edge recycled

    def test_rerecording_refreshes_lru_position(self):
        pf = PointerChasePrefetcher(table_size=2)
        self._traverse(pf, [10, 90, 170])  # edges 10->90, 90->170 (table full)
        self._traverse(pf, [10, 90])       # 170->10 evicts 10->90; 10->90 re-
        #                                  # recorded evicts 90->170
        assert dict(pf._succ) == {170: 10, 10: 90}
        pf.observe(250, False)             # 90->250: evicts the LRU (170->10)
        assert dict(pf._succ) == {10: 90, 90: 250}

    def test_reset_forgets_everything(self):
        pf = PointerChasePrefetcher()
        self._traverse(pf, [10, 90, 30])
        pf.reset()
        assert len(pf._succ) == 0
        assert pf.observe(10, False) == ()

    def test_survives_flush_flag(self):
        # The chase table is predictor SRAM: hierarchy.flush() must not
        # clear it, unlike the spatial units.
        assert PointerChasePrefetcher.survives_flush is True
        for cls in (Prefetcher, NextLinePrefetcher, AdjacentPairPrefetcher,
                    StreamerPrefetcher):
            assert cls.survives_flush is False


class TestBoundedState:
    """A million-page scan must not grow detector state without bound.

    The open-loop traffic subsystem pushes million-event schedules through
    these objects; tracking tables are capacity-bounded LRU like the silicon
    they model.
    """

    N = 1_000_000

    def test_streamer_state_bounded_under_page_scan(self):
        s = StreamerPrefetcher()
        for page in range(self.N):
            s.observe(page * 64, False)  # a new 4KiB page every access
        assert len(s._streams) <= STREAM_TABLE_SIZE

    def test_chase_state_bounded_under_page_scan(self):
        pf = PointerChasePrefetcher()
        for page in range(self.N):
            pf.observe(page * 64, False)  # every step is a +64 line jump
        assert len(pf._succ) <= CHASE_TABLE_SIZE


class TestCatalogue:
    def test_catalogue_names_and_summaries(self):
        names = [name for name, _ in PREFETCHER_CATALOGUE]
        assert names == ["next-line", "adjacent-pair", "streamer", "pointer-chase"]
        assert all(summary for _, summary in PREFETCHER_CATALOGUE)

    def test_mode_names(self):
        assert [name for name, _ in PREFETCHER_MODES] == [
            "default", "none", "chase", "chase-only"]


class TestBase:
    def test_null_prefetcher(self):
        p = Prefetcher()
        assert p.observe(1, False) == ()
        p.reset()  # no-op
