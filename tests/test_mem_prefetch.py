"""Tests for the prefetcher models."""

from repro.mem.prefetch import (
    AdjacentPairPrefetcher,
    NextLinePrefetcher,
    Prefetcher,
    StreamerPrefetcher,
)


class TestNextLine:
    def test_miss_fetches_next(self):
        assert NextLinePrefetcher().observe(10, hit=False) == (11,)

    def test_hit_fetches_nothing(self):
        assert NextLinePrefetcher().observe(10, hit=True) == ()


class TestAdjacentPair:
    def test_even_line_fetches_odd_buddy(self):
        assert AdjacentPairPrefetcher().observe(10, hit=False) == (11,)

    def test_odd_line_fetches_even_buddy(self):
        assert AdjacentPairPrefetcher().observe(11, hit=False) == (10,)

    def test_hit_fetches_nothing(self):
        assert AdjacentPairPrefetcher().observe(10, hit=True) == ()


class TestStreamer:
    def test_needs_trigger_run(self):
        s = StreamerPrefetcher(trigger_run=2)
        assert s.observe(100, False) == ()  # first touch: learn
        out = s.observe(101, False)  # second ascending: trigger
        assert out  # prefetches ahead

    def test_prefetch_lines_are_ahead(self):
        s = StreamerPrefetcher(max_distance=4)
        s.observe(100, False)
        out = s.observe(101, False)
        assert all(line > 101 for line in out)

    def test_distance_ramps_to_max(self):
        s = StreamerPrefetcher(max_distance=4)
        s.observe(100, False)
        first = s.observe(101, False)
        second = s.observe(102, False)
        assert len(second) >= len(first)
        assert len(second) == 4

    def test_repeat_access_ignored(self):
        s = StreamerPrefetcher()
        s.observe(100, False)
        assert s.observe(100, False) == ()

    def test_descending_breaks_stream(self):
        s = StreamerPrefetcher()
        s.observe(100, False)
        s.observe(101, False)
        assert s.observe(50, False) == ()  # same page? different line far back
        # After the break the run must rebuild before prefetching resumes.
        assert s.observe(51, False) != () or True

    def test_max_step_gap_tolerance(self):
        tolerant = StreamerPrefetcher(max_step=4)
        strict = StreamerPrefetcher(max_step=1)
        for s in (tolerant, strict):
            s.observe(100, False)
        assert tolerant.observe(103, False) != ()
        assert strict.observe(103, False) == ()

    def test_streams_tracked_per_page(self):
        s = StreamerPrefetcher()
        s.observe(100, False)
        s.observe(1000, False)  # other page: does not disturb first stream
        assert s.observe(101, False) != ()

    def test_table_eviction(self):
        s = StreamerPrefetcher(table_size=2)
        s.observe(0 * 64, False)
        s.observe(1 * 64, False)
        s.observe(2 * 64, False)  # evicts page 0's stream
        assert len(s._streams) == 2

    def test_reset(self):
        s = StreamerPrefetcher()
        s.observe(100, False)
        s.observe(101, False)
        s.reset()
        assert s.observe(102, False) == ()  # must relearn

    def test_observes_hits_too(self):
        # Streams keep ramping on prefetched hits (hit=True).
        s = StreamerPrefetcher()
        s.observe(100, False)
        s.observe(101, True)
        out = s.observe(102, True)
        assert out


class TestBase:
    def test_null_prefetcher(self):
        p = Prefetcher()
        assert p.observe(1, False) == ()
        p.reset()  # no-op
