"""Tests for the access-transaction containers (AccessResult / LevelStats)."""

import pytest

from repro.mem.result import LEVEL_FIELDS, LEVEL_LABELS, AccessResult, LevelStats


def make_tx(**kw):
    tx = AccessResult()
    tx.lines = kw.pop("lines", 0)
    tx.cycles = kw.pop("cycles", 0.0)
    for field, value in kw.items():
        setattr(tx, field, value)
    return tx


class TestAccessResult:
    def test_starts_zeroed(self):
        tx = AccessResult()
        assert tx.lines == 0 and tx.cycles == 0.0
        assert all(getattr(tx, f) == 0 for f in LEVEL_FIELDS)

    def test_reset_clears_everything(self):
        tx = make_tx(lines=3, cycles=42.0, l1_hits=2, dram_fills=1, prefetch_covered=1)
        tx.reset()
        assert tx.as_dict() == AccessResult().as_dict()

    def test_hits_excludes_dram(self):
        tx = make_tx(lines=5, netcache_hits=1, l1_hits=2, l2_hits=1, dram_fills=1)
        assert tx.hits == 4
        assert tx.hit_rate == pytest.approx(0.8)

    def test_hit_rate_of_empty_transaction(self):
        assert AccessResult().hit_rate == 0.0

    def test_as_dict_keys_cover_level_fields(self):
        d = AccessResult().as_dict()
        for field in LEVEL_FIELDS:
            assert field in d


class TestLevelStats:
    def test_add_folds_transaction(self):
        ls = LevelStats()
        ls.add(make_tx(lines=2, cycles=10.0, l1_hits=1, dram_fills=1))
        ls.add(make_tx(lines=1, cycles=4.0, l1_hits=1, prefetch_covered=1))
        assert ls.loads == 2
        assert ls.lines == 3
        assert ls.cycles == pytest.approx(14.0)
        assert ls.l1_hits == 2 and ls.dram_fills == 1
        assert ls.prefetch_covered == 1

    def test_merge_and_copy_are_independent(self):
        a = LevelStats()
        a.add(make_tx(lines=1, l1_hits=1))
        b = a.copy()
        b.add(make_tx(lines=1, dram_fills=1))
        assert a.lines == 1 and b.lines == 2
        a.merge(b)
        assert a.loads == 3 and a.lines == 3

    def test_attribution_sums_to_one(self):
        ls = LevelStats()
        ls.add(make_tx(lines=4, netcache_hits=1, l1_hits=1, l3_hits=1, dram_fills=1))
        attribution = ls.attribution()
        assert set(attribution) == set(LEVEL_LABELS)
        assert sum(attribution.values()) == pytest.approx(1.0)
        assert attribution["netcache"] == pytest.approx(0.25)

    def test_attribution_of_empty_stats(self):
        assert all(v == 0.0 for v in LevelStats().attribution().values())

    def test_snapshot_roundtrip(self):
        ls = LevelStats()
        ls.add(make_tx(lines=2, cycles=8.0, l2_hits=2))
        snap = ls.snapshot()
        assert snap["loads"] == 1
        assert snap["l2_hits"] == 2
        assert snap["hit_rate"] == pytest.approx(1.0)

    def test_merged_skips_none(self):
        a = LevelStats()
        a.add(make_tx(lines=1, l1_hits=1))
        merged = LevelStats.merged([a, None, a])
        assert merged.loads == 2 and merged.lines == 2

    def test_reset(self):
        ls = LevelStats()
        ls.add(make_tx(lines=1, l1_hits=1))
        ls.reset()
        assert ls.snapshot() == LevelStats().snapshot()
