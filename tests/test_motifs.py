"""Tests for the Figure 1 motif generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.motifs import (
    AmrMotif,
    Halo3dMotif,
    MOTIFS,
    Sweep3dMotif,
    occurrences_closed_form,
    occurrences_event_level,
)
from repro.motifs.base import QueueLengthSampler, bucketize


class TestOccurrenceAccounting:
    def test_single_phase(self):
        out = occurrences_closed_form(np.array([3]))
        # Lengths 1..2 visited twice (rising/falling), the peak 3 once,
        # and 0 once after the final deletion.
        assert list(out) == [1, 2, 2, 1]

    def test_empty(self):
        assert list(occurrences_closed_form(np.array([], dtype=int))) == [0]

    def test_zero_peaks(self):
        assert list(occurrences_closed_form(np.array([0, 0]))) == [0]

    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=50))
    @settings(max_examples=80)
    def test_closed_form_equals_event_level(self, peaks):
        """The vectorized counter must match an explicit event replay."""
        arr = np.asarray(peaks, dtype=np.int64)
        closed = occurrences_closed_form(arr)
        event = occurrences_event_level(peaks)
        n = max(len(closed), len(event))
        closed = np.pad(closed, (0, n - len(closed)))
        event = np.pad(event, (0, n - len(event)))
        assert np.array_equal(closed, event)

    def test_sampler(self):
        s = QueueLengthSampler()
        s.record(2)
        s.record(2)
        s.record(0)
        assert list(s.as_array()) == [1, 0, 2]

    def test_bucketize(self):
        occ = np.array([5, 5, 5, 5, 1, 1])
        buckets = bucketize(occ, 4)
        assert buckets == [("0-3", 20), ("4-7", 2)]


class TestMotifShapes:
    @pytest.mark.parametrize("name", list(MOTIFS))
    def test_runs_and_scales(self, name):
        motif = MOTIFS[name](seed=1, sim_ranks=256)
        result = motif.run()
        assert result.posted.sum() > 0
        assert result.unexpected.sum() > 0
        assert result.meta["sim_ranks"] == 256

    def test_paper_rank_counts(self):
        assert AmrMotif.nranks == 64 * 1024
        assert Sweep3dMotif.nranks == 128 * 1024
        assert Halo3dMotif.nranks == 256 * 1024

    def test_paper_bucket_widths(self):
        # Figure 1's x-axis bucket widths: 20 / 10 / 5.
        assert AmrMotif.bucket_width == 20
        assert Sweep3dMotif.bucket_width == 10
        assert Halo3dMotif.bucket_width == 5

    def test_amr_extremes_reach_mid_400s(self):
        result = AmrMotif(seed=0).run()
        assert 390 <= result.max_posted_length <= 439

    def test_amr_mass_in_low_lengths(self):
        result = AmrMotif(seed=0).run()
        total = result.posted.sum()
        assert result.posted[:200].sum() > 0.85 * total

    def test_amr_histogram_decays(self):
        result = AmrMotif(seed=0).run()
        buckets = [c for _, c in result.posted_buckets()]
        assert buckets[0] > buckets[len(buckets) // 2] > buckets[-1]
        # Figure 1a spans several decades between first and last bucket.
        assert buckets[0] > 1000 * max(1, buckets[-1])

    def test_sweep3d_capped_below_200(self):
        result = Sweep3dMotif(seed=0).run()
        assert result.max_posted_length <= 199

    def test_sweep3d_mass_below_100(self):
        result = Sweep3dMotif(seed=0).run()
        assert result.posted[:100].sum() > 0.95 * result.posted.sum()

    def test_halo3d_dominated_by_tiny_queues(self):
        """Figure 1c: 'relatively few elements in the queue and many very
        small queue length operations'."""
        result = Halo3dMotif(seed=0).run()
        assert result.posted[:15].sum() > 0.9 * result.posted.sum()

    def test_halo3d_capped_below_100(self):
        result = Halo3dMotif(seed=0).run()
        assert result.max_posted_length <= 99

    def test_unexpected_shorter_than_posted(self):
        for name, cls in MOTIFS.items():
            result = cls(seed=0, sim_ranks=512).run()
            assert result.max_unexpected_length <= result.max_posted_length

    def test_deterministic(self):
        a = AmrMotif(seed=9, sim_ranks=256).run()
        b = AmrMotif(seed=9, sim_ranks=256).run()
        assert np.array_equal(a.posted, b.posted)

    def test_scaling_factor_applied(self):
        small = AmrMotif(seed=0, sim_ranks=256).run()
        assert small.meta["scale"] == pytest.approx(64 * 1024 / 256)
        # Total occurrences reflect the full machine, not the sample.
        assert small.posted.sum() > 1e6
