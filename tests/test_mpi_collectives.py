"""Tests for the binomial-tree collectives over the DES runtime."""

import operator

import pytest

from repro.mpi import MpiWorld

SIZES = [1, 2, 3, 4, 5, 8, 13, 16]


def run_world(nranks, program):
    world = MpiWorld(nranks, seed=1)
    world.run(program)
    return world


class TestBcast:
    @pytest.mark.parametrize("nranks", SIZES)
    def test_all_ranks_get_root_value(self, nranks):
        got = {}

        def program(ctx):
            value = yield from ctx.bcast("payload" if ctx.rank == 0 else None)
            got[ctx.rank] = value

        run_world(nranks, program)
        assert got == {r: "payload" for r in range(nranks)}

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_nonzero_root(self, root):
        got = {}

        def program(ctx):
            value = yield from ctx.bcast(ctx.rank * 10, root=root)
            got[ctx.rank] = value

        run_world(5, program)
        assert set(got.values()) == {root * 10}

    def test_back_to_back_bcasts_do_not_cross(self):
        got = {}

        def program(ctx):
            a = yield from ctx.bcast("first" if ctx.rank == 0 else None)
            b = yield from ctx.bcast("second" if ctx.rank == 0 else None)
            got[ctx.rank] = (a, b)

        run_world(4, program)
        assert all(v == ("first", "second") for v in got.values())


class TestReduce:
    @pytest.mark.parametrize("nranks", SIZES)
    def test_sum_of_ranks(self, nranks):
        got = {}

        def program(ctx):
            value = yield from ctx.reduce(ctx.rank, operator.add)
            got[ctx.rank] = value

        run_world(nranks, program)
        assert got[0] == sum(range(nranks))
        assert all(got[r] is None for r in range(1, nranks))

    def test_max_reduce_to_nonzero_root(self):
        got = {}

        def program(ctx):
            value = yield from ctx.reduce(ctx.rank * 7 % 5, max, root=2)
            got[ctx.rank] = value

        run_world(6, program)
        assert got[2] == max(r * 7 % 5 for r in range(6))
        assert got[0] is None


class TestAllreduce:
    @pytest.mark.parametrize("nranks", SIZES)
    def test_everyone_gets_the_sum(self, nranks):
        got = {}

        def program(ctx):
            value = yield from ctx.allreduce(ctx.rank + 1, operator.add)
            got[ctx.rank] = value

        run_world(nranks, program)
        expected = sum(range(1, nranks + 1))
        assert got == {r: expected for r in range(nranks)}


class TestGather:
    @pytest.mark.parametrize("nranks", SIZES)
    def test_rank_ordered_list_at_root(self, nranks):
        got = {}

        def program(ctx):
            value = yield from ctx.gather(ctx.rank * ctx.rank)
            got[ctx.rank] = value

        run_world(nranks, program)
        assert got[0] == [r * r for r in range(nranks)]
        assert all(got[r] is None for r in range(1, nranks))


class TestComposition:
    def test_collectives_mixed_with_point_to_point(self):
        results = {}

        def program(ctx):
            # p2p ring shift, then a reduction over what arrived.
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            yield from ctx.send(right, tag=5, nbytes=8, payload=ctx.rank)
            req = yield from ctx.recv(src=left, tag=5)
            total = yield from ctx.allreduce(req.message.payload, operator.add)
            results[ctx.rank] = total

        run_world(6, program)
        assert set(results.values()) == {sum(range(6))}

    def test_collective_matching_goes_through_queues(self):
        """Collective traffic must exercise the PRQ/UMQ machinery."""
        world = MpiWorld(4, seed=3)

        def program(ctx):
            yield from ctx.bcast("x" if ctx.rank == 0 else None)

        world.run(program)
        total_matches = sum(
            len(p.prq_search_depths) + len(p.umq_search_depths) for p in world.procs
        )
        assert total_matches >= 3  # one receive per non-root rank
