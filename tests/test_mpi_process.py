"""Tests for the per-rank PRQ/UMQ state machine (paper section 2.1)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.matching import ANY_SOURCE, ANY_TAG, Envelope, make_queue
from repro.mpi.communicator import Communicator
from repro.mpi.message import Message
from repro.mpi.process import MpiProcess, RecvRequest


def new_proc(family="baseline", sample_depths=False):
    rng = np.random.default_rng(0)
    return MpiProcess(
        0,
        make_queue(family, rng=rng),
        make_queue(family, entry_bytes=16, rng=rng, arena_base=0x2000_0000),
        sample_depths=sample_depths,
    )


def msg(src, tag, cid=0, nbytes=8):
    return Message(Envelope(src, tag, cid), nbytes)


class TestReceivePath:
    def test_expected_message(self):
        proc = new_proc()
        req = proc.post_recv(src=1, tag=5)
        assert not req.completed
        completed = proc.handle_arrival(msg(1, 5))
        assert completed is req
        assert req.completed and not req.matched_unexpected
        assert req.message.tag == 5

    def test_unexpected_message(self):
        proc = new_proc()
        assert proc.handle_arrival(msg(1, 5)) is None
        assert len(proc.umq) == 1
        req = proc.post_recv(src=1, tag=5)
        assert req.completed and req.matched_unexpected
        assert len(proc.umq) == 0

    def test_unmatched_recv_lands_in_prq(self):
        proc = new_proc()
        proc.post_recv(src=1, tag=5)
        assert len(proc.prq) == 1
        assert len(proc.umq) == 0

    def test_umq_searched_before_posting(self):
        """Section 2.1: recv searches the UMQ *first*."""
        proc = new_proc()
        proc.handle_arrival(msg(1, 5))
        proc.handle_arrival(msg(1, 6))
        req = proc.post_recv(src=1, tag=6)
        assert req.completed
        assert len(proc.prq) == 0
        assert len(proc.umq) == 1

    def test_wildcard_recv_matches_unexpected(self):
        proc = new_proc()
        proc.handle_arrival(msg(3, 9))
        req = proc.post_recv(src=ANY_SOURCE, tag=ANY_TAG)
        assert req.completed
        assert req.message.src == 3

    def test_fifo_across_unexpected(self):
        proc = new_proc()
        proc.handle_arrival(msg(3, 9))
        proc.handle_arrival(msg(4, 9))
        req = proc.post_recv(src=ANY_SOURCE, tag=9)
        assert req.message.src == 3

    def test_double_complete_rejected(self):
        req = RecvRequest(src=0, tag=0, cid=0)
        req.complete(None)
        with pytest.raises(MpiUsageError):
            req.complete(None)

    def test_on_complete_callback(self):
        proc = new_proc()
        req = proc.post_recv(src=1, tag=5)
        fired = []
        req.on_complete = lambda r: fired.append(r)
        proc.handle_arrival(msg(1, 5))
        assert fired == [req]

    def test_communicator_isolation(self):
        proc = new_proc()
        proc.post_recv(src=1, tag=5, cid=3)
        assert proc.handle_arrival(msg(1, 5, cid=4)) is None
        assert len(proc.umq) == 1


class TestDepthTraces:
    def test_prq_search_depth_recorded(self):
        proc = new_proc()
        for tag in range(5):
            proc.post_recv(src=1, tag=tag)
        proc.handle_arrival(msg(1, 3))
        assert proc.prq_search_depths == [4]
        assert proc.mean_prq_search_depth == 4.0

    def test_umq_search_depth_recorded(self):
        proc = new_proc()
        for tag in range(5):
            proc.handle_arrival(msg(1, tag))
        proc.post_recv(src=1, tag=4)
        assert proc.umq_search_depths == [5]

    def test_samples(self):
        proc = new_proc(sample_depths=True)
        proc.post_recv(src=1, tag=0)
        proc.handle_arrival(msg(1, 0))
        assert [(s.prq_len, s.umq_len) for s in proc.samples] == [(1, 0), (0, 0)]

    def test_reset_traces(self):
        proc = new_proc(sample_depths=True)
        proc.post_recv(src=1, tag=0)
        proc.reset_traces()
        assert proc.samples == [] and proc.prq_search_depths == []

    def test_mean_depth_empty(self):
        proc = new_proc()
        assert proc.mean_prq_search_depth == 0.0


class TestCommunicator:
    def test_world(self):
        comm = Communicator.world(16)
        assert comm.cid == 0 and comm.size == 16

    def test_rank_check(self):
        comm = Communicator.world(4)
        comm.check_rank(3)
        with pytest.raises(MpiUsageError):
            comm.check_rank(4)
        with pytest.raises(MpiUsageError):
            comm.check_rank(-1)

    def test_derive_unique_cids(self):
        a = Communicator.derive(4)
        b = Communicator.derive(4)
        assert a.cid != b.cid != 0

    def test_invalid(self):
        with pytest.raises(MpiUsageError):
            Communicator(cid=0, size=0)
        with pytest.raises(MpiUsageError):
            Communicator(cid=-1, size=4)


class TestUmqQueueTimes:
    """Keller & Graham (section 5): how long unexpected messages wait."""

    def test_queue_time_measured_on_drain(self):
        from repro.sim.clock import Clock

        clock = Clock()
        rng = np.random.default_rng(0)
        proc = MpiProcess(
            0,
            make_queue("baseline", rng=rng),
            make_queue("baseline", entry_bytes=16, rng=rng, arena_base=0x2000_0000),
            clock=clock,
        )
        proc.handle_arrival(msg(1, 5))
        clock.advance(1234.0)
        req = proc.post_recv(src=1, tag=5)
        assert req.matched_unexpected
        assert proc.umq_queue_times == [pytest.approx(1234.0)]
        assert proc.mean_umq_queue_time == pytest.approx(1234.0)

    def test_no_queue_time_for_expected_messages(self):
        proc = new_proc()
        proc.post_recv(src=1, tag=5)
        proc.handle_arrival(msg(1, 5))
        assert proc.umq_queue_times == []

    def test_mean_over_multiple(self):
        from repro.sim.clock import Clock

        clock = Clock()
        rng = np.random.default_rng(0)
        proc = MpiProcess(
            0,
            make_queue("baseline", rng=rng),
            make_queue("baseline", entry_bytes=16, rng=rng, arena_base=0x2000_0000),
            clock=clock,
        )
        proc.handle_arrival(msg(1, 1))
        clock.advance(100.0)
        proc.handle_arrival(msg(1, 2))
        clock.advance(100.0)
        proc.post_recv(src=1, tag=1)  # waited 200
        proc.post_recv(src=1, tag=2)  # waited 100
        assert proc.mean_umq_queue_time == pytest.approx(150.0)

    def test_reset_clears_queue_times(self):
        proc = new_proc()
        proc.handle_arrival(msg(1, 5))
        proc.post_recv(src=1, tag=5)
        proc.reset_traces()
        assert proc.umq_queue_times == []
