"""Integration tests for the multi-rank DES runtime."""

import pytest

from repro.arch import SANDY_BRIDGE
from repro.errors import MpiUsageError
from repro.mpi import MpiWorld
from repro.net import QLOGIC_QDR


class TestPointToPoint:
    def test_simple_send_recv(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, tag=7, nbytes=128)
            else:
                req = yield from ctx.recv(src=0, tag=7)
                assert req.completed
                assert req.message.nbytes == 128
            return ctx.rank

        w = MpiWorld(2)
        w.run(program)

    def test_network_latency_applied(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, tag=1, nbytes=0)
            else:
                yield from ctx.recv(src=0, tag=1)

        w = MpiWorld(2, link=QLOGIC_QDR)
        finish = w.run(program)
        assert finish >= QLOGIC_QDR.transfer_us(0) * 1000.0

    def test_out_of_order_tags_via_umq(self):
        received = []

        def program(ctx):
            if ctx.rank == 0:
                for tag in (0, 1, 2, 3):
                    yield from ctx.send(1, tag=tag, nbytes=8)
            else:
                for tag in (3, 1, 0, 2):
                    req = yield from ctx.recv(src=0, tag=tag)
                    received.append(req.message.tag)

        MpiWorld(2).run(program)
        assert received == [3, 1, 0, 2]

    def test_unexpected_path_exercised(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, tag=9, nbytes=8)
            else:
                # Wait long enough that the message is unexpected.
                from repro.sim.kernel import Timeout

                yield Timeout(1e6)
                req = yield from ctx.recv(src=0, tag=9)
                assert req.matched_unexpected

        MpiWorld(2).run(program)

    def test_invalid_destination(self):
        def program(ctx):
            yield from ctx.send(5, tag=0)

        w = MpiWorld(2)
        with pytest.raises(MpiUsageError):
            w.run(program)


class TestBarrier:
    def test_barrier_synchronizes(self):
        exit_times = {}

        def program(ctx):
            from repro.sim.kernel import Timeout

            yield Timeout(float(ctx.rank) * 100.0)
            yield from ctx.barrier()
            exit_times[ctx.rank] = ctx.now

        MpiWorld(4).run(program)
        assert len(set(exit_times.values())) == 1
        assert list(exit_times.values())[0] >= 300.0

    def test_barrier_repeatable(self):
        def program(ctx):
            for _ in range(3):
                yield from ctx.barrier()

        MpiWorld(3).run(program)


class TestDeadlockDetection:
    def test_unmatched_recv_detected(self):
        def program(ctx):
            if ctx.rank == 1:
                yield from ctx.recv(src=0, tag=1)  # never sent

        w = MpiWorld(2)
        with pytest.raises(MpiUsageError, match="deadlock"):
            w.run(program)


class TestEngineRanks:
    def test_cycle_accounting_adds_time(self):
        def program(ctx):
            if ctx.rank == 0:
                for tag in range(32):
                    yield from ctx.send(1, tag=tag, nbytes=8)
            else:
                for tag in reversed(range(32)):  # force deep searches
                    yield from ctx.recv(src=0, tag=tag)

        fast = MpiWorld(2, queue_family="baseline")
        t_fast = fast.run(program)
        slow = MpiWorld(
            2, queue_family="baseline", arch=SANDY_BRIDGE, engine_ranks=(1,)
        )
        t_slow = slow.run(program)
        assert t_slow > t_fast

    def test_engine_requires_arch(self):
        with pytest.raises(MpiUsageError):
            MpiWorld(2, engine_ranks=(0,))

    def test_queue_family_choice(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, tag=0, nbytes=8)
            else:
                yield from ctx.recv(src=0, tag=0)

        for family in ("lla-4", "openmpi", "hashmap"):
            MpiWorld(2, queue_family=family).run(program)

    def test_world_needs_rank(self):
        with pytest.raises(MpiUsageError):
            MpiWorld(0)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def make_log():
            log = []

            def program(ctx):
                if ctx.rank == 0:
                    for tag in range(8):
                        yield from ctx.send(1, tag=tag, nbytes=64)
                else:
                    for tag in range(8):
                        req = yield from ctx.recv(src=0, tag=tag)
                        log.append((req.message.tag, ctx.now))

            MpiWorld(2, seed=5).run(program)
            return log

        assert make_log() == make_log()
