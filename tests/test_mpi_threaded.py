"""Tests for the MPI_THREAD_MULTIPLE contention simulation (section 2.3)."""

import pytest

from repro.arch import SANDY_BRIDGE
from repro.errors import ConfigurationError
from repro.mpi.threaded import (
    ThreadedMatchResult,
    run_threaded_matching,
    thread_scaling_study,
)


class TestSingleRun:
    def test_all_messages_match(self):
        r = run_threaded_matching(4, 64, seed=1)
        assert r.total_messages == 64
        assert r.finish_ns > 0

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            run_threaded_matching(0, 10)
        with pytest.raises(ConfigurationError):
            run_threaded_matching(8, 4)

    def test_single_thread_is_well_ordered(self):
        r = run_threaded_matching(1, 128, seed=2)
        assert r.mean_search_depth == pytest.approx(1.0)

    def test_deterministic(self):
        a = run_threaded_matching(4, 64, seed=9)
        b = run_threaded_matching(4, 64, seed=9)
        assert a.mean_search_depth == b.mean_search_depth
        assert a.finish_ns == b.finish_ns

    def test_seed_changes_interleaving(self):
        a = run_threaded_matching(8, 128, seed=1)
        b = run_threaded_matching(8, 128, seed=2)
        assert a.mean_search_depth != b.mean_search_depth

    def test_cycle_accounted_variant(self):
        r = run_threaded_matching(2, 32, seed=1, arch=SANDY_BRIDGE)
        assert r.match_cycles > 0

    def test_contention_rate_bounds(self):
        r = run_threaded_matching(8, 64, seed=1)
        assert 0.0 <= r.contention_rate <= 1.0


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return thread_scaling_study((1, 2, 8), total_messages=128, trials=3, seed=0)

    def test_depth_grows_with_threads(self, study):
        """Section 2.3: 'list lengths and search depths are anticipated to
        grow' under multithreaded communication."""
        by_t = {r.threads: r for r in study}
        assert by_t[1].mean_search_depth == pytest.approx(1.0)
        assert by_t[2].mean_search_depth > by_t[1].mean_search_depth
        assert by_t[8].mean_search_depth > by_t[2].mean_search_depth

    def test_contention_grows_with_threads(self, study):
        by_t = {r.threads: r for r in study}
        assert by_t[8].contention_rate > by_t[2].contention_rate > by_t[1].contention_rate

    def test_volume_held_fixed(self, study):
        assert len({r.total_messages for r in study}) == 1

    def test_result_type(self, study):
        assert all(isinstance(r, ThreadedMatchResult) for r in study)
