"""Tests for the MPI_THREAD_MULTIPLE interleaving utilities."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mpi.threads import interleave_streams, shuffled


class TestInterleave:
    def test_all_items_emitted_once(self):
        rng = np.random.default_rng(0)
        streams = [[1, 2, 3], [4, 5], [6]]
        out = list(interleave_streams(streams, rng))
        assert sorted(out) == [1, 2, 3, 4, 5, 6]

    def test_per_stream_order_preserved(self):
        rng = np.random.default_rng(1)
        streams = [list(range(10)), list(range(100, 110))]
        out = list(interleave_streams(streams, rng))
        first = [x for x in out if x < 100]
        second = [x for x in out if x >= 100]
        assert first == list(range(10))
        assert second == list(range(100, 110))

    def test_empty_streams_skipped(self):
        rng = np.random.default_rng(0)
        assert list(interleave_streams([[], [1], []], rng)) == [1]

    def test_no_streams(self):
        rng = np.random.default_rng(0)
        assert list(interleave_streams([], rng)) == []

    def test_deterministic_with_seed(self):
        streams = [list(range(20)), list(range(100, 120))]
        a = list(interleave_streams(streams, np.random.default_rng(7)))
        b = list(interleave_streams(streams, np.random.default_rng(7)))
        assert a == b

    def test_orders_differ_across_seeds(self):
        streams = [list(range(20)), list(range(100, 120))]
        a = list(interleave_streams(streams, np.random.default_rng(1)))
        b = list(interleave_streams(streams, np.random.default_rng(2)))
        assert a != b

    def test_actually_interleaves(self):
        streams = [list(range(50)), list(range(100, 150))]
        out = list(interleave_streams(streams, np.random.default_rng(3)))
        # Not simply concatenated.
        assert out[:50] != list(range(50))

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=0, max_size=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60)
    def test_properties_hold_for_any_input(self, lengths, seed):
        # Unique (stream, index) items make the ordering check unambiguous.
        streams = [[(i, j) for j in range(n)] for i, n in enumerate(lengths)]
        rng = np.random.default_rng(seed)
        out = list(interleave_streams(streams, rng))
        assert len(out) == sum(lengths)
        assert sorted(out) == sorted(x for s in streams for x in s)
        for i in range(len(streams)):
            emitted = [j for (si, j) in out if si == i]
            assert emitted == list(range(lengths[i]))


class TestShuffled:
    def test_permutation(self):
        out = shuffled(list(range(10)), np.random.default_rng(0))
        assert sorted(out) == list(range(10))

    def test_deterministic(self):
        a = shuffled(list(range(10)), np.random.default_rng(4))
        b = shuffled(list(range(10)), np.random.default_rng(4))
        assert a == b

    def test_original_untouched(self):
        items = list(range(10))
        shuffled(items, np.random.default_rng(0))
        assert items == list(range(10))
