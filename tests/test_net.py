"""Tests for the fabric models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.net import ARIES, MELLANOX_QDR, OMNIPATH, QLOGIC_QDR, LinkSpec, get_link


class TestPresets:
    def test_lookup(self):
        assert get_link("qlogic-ib-qdr") is QLOGIC_QDR
        assert get_link("omnipath") is OMNIPATH

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_link("token-ring")

    def test_paper_fabric_ceilings(self):
        # All three systems converge near 3.0-3.5 GiB/s in the figures.
        for link in (QLOGIC_QDR, OMNIPATH, MELLANOX_QDR):
            assert 2500 < link.peak_bandwidth_mibps() < 3500
        assert ARIES.peak_bandwidth_mibps() > QLOGIC_QDR.peak_bandwidth_mibps()


class TestTiming:
    def test_transfer_includes_latency(self):
        assert QLOGIC_QDR.transfer_us(0) > QLOGIC_QDR.serialization_us(0)

    def test_serialization_grows_linearly(self):
        small = QLOGIC_QDR.serialization_us(1024)
        large = QLOGIC_QDR.serialization_us(1024 * 1024)
        overhead = QLOGIC_QDR.per_msg_overhead_us
        assert (large - overhead) / (small - overhead) == pytest.approx(1024.0)

    def test_transfer_cycles(self):
        us = QLOGIC_QDR.transfer_us(4096)
        assert QLOGIC_QDR.transfer_cycles(4096, 2.6) == pytest.approx(us * 2600)

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            LinkSpec("bad", latency_us=-1.0, bandwidth_bytes_per_us=100.0)
        with pytest.raises(ConfigurationError):
            LinkSpec("bad", latency_us=1.0, bandwidth_bytes_per_us=0.0)

    @given(st.integers(min_value=0, max_value=1 << 24))
    def test_monotone_in_size(self, nbytes):
        assert QLOGIC_QDR.transfer_us(nbytes + 1) >= QLOGIC_QDR.transfer_us(nbytes)
