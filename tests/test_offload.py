"""Tests for the NIC matching-offload model (section 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import SANDY_BRIDGE
from repro.errors import ConfigurationError
from repro.matching import (
    ANY_SOURCE,
    Envelope,
    MatchEngine,
    MatchItem,
    make_pattern,
    make_queue,
)
from repro.offload import BXI_LIKE, PSM2_LIKE, NicMatchConfig, OffloadedMatchQueue


def offloaded(hw_entries=4, family="baseline", engine=None):
    cfg = NicMatchConfig(hw_entries=hw_entries)
    overflow = make_queue(family, rng=np.random.default_rng(0), port=engine)
    return OffloadedMatchQueue(overflow, cfg, engine=engine)


def env_probe(src, tag, seq=10_000):
    return MatchItem.from_envelope(Envelope(src, tag, 0), seq=seq)


class TestConfig:
    def test_presets(self):
        assert BXI_LIKE.hw_entries > PSM2_LIKE.hw_entries

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            NicMatchConfig(hw_entries=0)


class TestPrefixInvariant:
    def test_posts_fill_nic_first(self):
        q = offloaded(hw_entries=3)
        for seq in range(5):
            q.post(make_pattern(0, seq, 0, seq=seq))
        assert q.nic_depth == 3
        assert q.overflow_depth == 2

    def test_nic_holds_earliest_seqs(self):
        q = offloaded(hw_entries=3)
        for seq in range(5):
            q.post(make_pattern(0, seq, 0, seq=seq))
        nic_seqs = [it.seq for it in list(q.iter_items())[:3]]
        assert nic_seqs == [0, 1, 2]

    def test_promotion_after_nic_match(self):
        q = offloaded(hw_entries=3)
        for seq in range(5):
            q.post(make_pattern(0, seq, 0, seq=seq))
        q.match_remove(env_probe(0, 1))
        # Earliest overflow entry (seq 3) promoted; prefix invariant holds.
        assert q.nic_depth == 3
        assert q.overflow_depth == 1
        nic_seqs = [it.seq for it in list(q.iter_items())[:3]]
        assert nic_seqs == [0, 2, 3]
        assert q.promotions == 1

    def test_promotion_after_overflow_match(self):
        q = offloaded(hw_entries=2)
        for seq in range(4):
            q.post(make_pattern(0, seq, 0, seq=seq))
        q.match_remove(env_probe(0, 3))  # matches in overflow
        assert q.nic_depth == 2
        assert q.overflow_depth == 1


class TestSemantics:
    def test_fifo_across_the_split(self):
        q = offloaded(hw_entries=2)
        for seq in range(5):
            q.post(make_pattern(0, 7, 0, seq=seq))  # all identical patterns
        for expected in range(5):
            assert q.match_remove(env_probe(0, 7, seq=100 + expected)).seq == expected

    def test_wildcards_on_nic(self):
        q = offloaded(hw_entries=4)
        q.post(make_pattern(ANY_SOURCE, 5, 0, seq=0))
        assert q.match_remove(env_probe(9, 5)).seq == 0

    def test_miss(self):
        q = offloaded()
        q.post(make_pattern(0, 1, 0, seq=0))
        assert q.match_remove(env_probe(0, 2)) is None
        assert len(q) == 1

    @given(
        st.lists(
            st.tuples(st.sampled_from(["post", "probe"]), st.integers(0, 2), st.integers(0, 2)),
            min_size=1,
            max_size=50,
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_plain_software_queue(self, ops, hw_entries):
        """Offload changes costs, never matching results."""
        plain = make_queue("baseline", rng=np.random.default_rng(0))
        nic = offloaded(hw_entries=hw_entries)
        outcomes = [[], []]
        for seq, (kind, src, tag) in enumerate(ops):
            for out, q in zip(outcomes, (plain, nic)):
                if kind == "post":
                    q.post(make_pattern(src, tag, 0, seq=seq))
                else:
                    found = q.match_remove(env_probe(src, tag, seq=seq))
                    out.append(found.seq if found is not None else None)
        assert outcomes[0] == outcomes[1]
        assert len(plain) == len(nic)


class TestCosts:
    def _search_cycles(self, depth, hw_entries):
        hier = SANDY_BRIDGE.build_hierarchy()
        engine = MatchEngine(hier)
        q = offloaded(hw_entries=hw_entries, family="baseline", engine=engine)
        for seq in range(depth):
            q.post(make_pattern(0, 10_000 + seq, 0, seq=seq))
        q.post(make_pattern(1, 7, 0, seq=depth + 1))
        hier.flush()
        probe = env_probe(1, 7, seq=999_999)
        _, cycles = engine.timed(lambda: q.match_remove(probe))
        return cycles

    def test_within_capacity_far_cheaper_than_software(self):
        """While the list fits on-NIC, matching is dramatically cheaper than
        any software traversal of the same depth (compare the baseline's
        ~90k cycles at depth 1000 measured in test_matching_engine)."""
        deep = self._search_cycles(depth=1000, hw_entries=1024)
        assert deep < 10_000  # ~2.3k cycles: 0.8 ns/entry pipelined CAM
        shallow = self._search_cycles(depth=8, hw_entries=1024)
        assert shallow < deep  # still grows, but at nanosecond slope

    def test_overflow_cliff(self):
        """Beyond hardware capacity the software path dominates again."""
        inside = self._search_cycles(depth=1000, hw_entries=1024)
        beyond = self._search_cycles(depth=3000, hw_entries=1024)
        assert beyond > 5 * inside

    def test_software_locality_matters_beyond_capacity(self):
        """The paper's point: software matching improvements only help
        offloaded NICs once lists exceed hardware capacity."""
        def run(family):
            hier = SANDY_BRIDGE.build_hierarchy()
            engine = MatchEngine(hier)
            q = offloaded(hw_entries=256, family=family, engine=engine)
            for seq in range(2048):
                q.post(make_pattern(0, 10_000 + seq, 0, seq=seq))
            q.post(make_pattern(1, 7, 0, seq=5000))
            hier.flush()
            _, cycles = engine.timed(lambda: q.match_remove(env_probe(1, 7, seq=999_999)))
            return cycles

        assert run("lla-8") < 0.6 * run("baseline")

    def test_nic_counters(self):
        q = offloaded(hw_entries=2)
        for seq in range(3):
            q.post(make_pattern(0, seq, 0, seq=seq))
        q.match_remove(env_probe(0, 0))
        assert q.nic_searches == 1
        assert q.nic_hits == 1
        assert q.nic_entries_inspected == 1
