"""Cross-cutting property-based tests on core invariants.

These complement the per-module tests with whole-subsystem invariants under
randomized operation sequences: allocator non-overlap with reuse, cache
capacity/partition guarantees, warming monotonicity, LLA FIFO structure,
heater lazy-schedule coherence, and the offload prefix invariant.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch import SANDY_BRIDGE
from repro.hotcache import Heater, HeaterConfig
from repro.matching import make_pattern, MatchItem, Envelope
from repro.matching.lla import LinkedListOfArrays
from repro.mem.alloc import Allocation, BumpAllocator, FragmentedHeap, SequentialHeap
from repro.mem.cache import CLS_DEFAULT, CLS_NETWORK, SetAssociativeCache, WayPartition
from repro.mem.hierarchy import MemoryHierarchy
from repro.offload import NicMatchConfig, OffloadedMatchQueue
from repro.matching.factory import make_queue

BASE = 0x1000_0000


class TestAllocatorReuseProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=96)),
            min_size=1,
            max_size=120,
        ),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_sequential_heap_live_allocations_never_overlap(self, ops, seed):
        heap = SequentialHeap(BASE, 1 << 28, np.random.default_rng(seed))
        live = []
        for do_alloc, size in ops:
            if do_alloc or not live:
                live.append(heap.alloc(size))
            else:
                heap.free(live.pop(len(live) // 2))
        ordered = sorted(live, key=lambda a: a.addr)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.addr

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=96)),
            min_size=1,
            max_size=120,
        ),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_fragmented_heap_live_allocations_never_overlap(self, ops, seed):
        heap = FragmentedHeap(BASE, 1 << 30, np.random.default_rng(seed))
        live = []
        for do_alloc, size in ops:
            if do_alloc or not live:
                live.append(heap.alloc(size))
            else:
                heap.free(live.pop(0))
        ordered = sorted(live, key=lambda a: a.addr)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.addr


class TestCacheProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, lines, assoc):
        c = SetAssociativeCache("t", 4 * assoc * 64, assoc, 10.0)
        for line in lines:
            if c.lookup(line) is None:
                c.fill(line)
            assert c.occupancy() <= c.capacity_lines
            for s in c._sets:
                assert len(s) <= assoc

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_preserves_network_share(self, ops):
        """Once network lines occupy the reserved share of a set, default
        fills can never push that set's network occupancy below the share."""
        reserved = 2
        c = SetAssociativeCache(
            "t", 1 * 4 * 64, 4, 10.0, partition=WayPartition(network_ways=reserved)
        )
        for line, is_net in ops:
            before = c.occupancy(CLS_NETWORK)
            refill_of_network_line = not is_net and c.contains(line) and before > 0
            c.fill(line, CLS_NETWORK if is_net else CLS_DEFAULT)
            after = c.occupancy(CLS_NETWORK)
            if not is_net and not refill_of_network_line:
                # A default fill of a *new* line may never evict protected
                # network lines (re-filling a resident network line with
                # default data legitimately reclassifies it).
                assert after >= min(before, reserved)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_warming_monotonicity(self, addrs):
        """The second access to the same address is never more expensive."""
        hier = MemoryHierarchy(
            l1_prefetcher_factory=list, l2_prefetcher_factory=list
        )
        for addr in addrs:
            first = hier.access(0, addr * 8, 8)
            second = hier.access(0, addr * 8, 8)
            assert second <= first


class TestLlaStructureProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=7)),
            min_size=1,
            max_size=150,
        ),
        st.sampled_from([2, 3, 8]),
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_sequence_strictly_increasing(self, ops, k):
        q = LinkedListOfArrays(k)
        seq = 0
        for is_post, tag in ops:
            if is_post:
                q.post(make_pattern(0, tag, 0, seq=seq))
                seq += 1
            else:
                q.match_remove(
                    MatchItem.from_envelope(Envelope(0, tag, 0), seq=100_000 + seq)
                )
                seq += 1
            items = [it.seq for it in q.iter_items()]
            assert items == sorted(items)
            # Node windows are consistent.
            for node in q._nodes:
                assert 0 <= node.start <= node.end <= k
                assert node.live >= 1  # empty nodes are unlinked eagerly


class TestHeaterScheduleCoherence:
    @given(
        st.lists(st.floats(min_value=1.0, max_value=50_000.0), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_incremental_catch_up_equals_single_jump(self, deltas, nregions):
        """Lazy heater scheduling: many small catch_ups == one big one."""

        def build():
            hier = SANDY_BRIDGE.build_hierarchy()
            heater = Heater(hier, SANDY_BRIDGE.ghz, HeaterConfig(locked=False))
            for i in range(nregions):
                heater.regions.add(Allocation(0x4000_0000 + i * 0x1000, 256))
            return heater

        incremental = build()
        t = 0.0
        for d in deltas:
            t += d
            incremental.catch_up(t)
        jump = build()
        jump.catch_up(t)
        assert incremental.passes == jump.passes
        assert incremental.next_pass_start == jump.next_pass_start
        assert incremental.lines_touched == jump.lines_touched


class TestOffloadPrefixProperty:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["post", "probe"]), st.integers(0, 3), st.integers(0, 3)),
            min_size=1,
            max_size=80,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_nic_always_holds_the_fifo_prefix(self, ops, hw_entries):
        overflow = make_queue("baseline", rng=np.random.default_rng(0))
        q = OffloadedMatchQueue(overflow, NicMatchConfig(hw_entries=hw_entries))
        for seq, (kind, src, tag) in enumerate(ops):
            if kind == "post":
                q.post(make_pattern(src, tag, 0, seq=seq))
            else:
                q.match_remove(
                    MatchItem.from_envelope(Envelope(src, tag, 0), seq=10_000 + seq)
                )
            nic_seqs = [it.seq for it in q._nic]
            sw_seqs = [it.seq for it in q.overflow.iter_items()]
            assert nic_seqs == sorted(nic_seqs)
            if sw_seqs:
                # Either the NIC is full, or software is empty.
                assert len(q._nic) == hw_entries
                assert max(nic_seqs) < min(sw_seqs)
            assert len(q) == len(nic_seqs) + len(sw_seqs)
