"""Batched scan transactions vs per-slot loads: bit-identical, by lockstep.

The scan-transaction port API (:meth:`~repro.matching.port.MemoryPort.load_run`
plus the ``begin_scan``/``end_scan`` bracket) lets queues charge a contiguous
run of probes in one engine call. Its contract is strict equivalence with the
retained per-slot spelling: same ``clock.now`` to the last float bit, same
``LevelStats``, same per-cache recency state, same RNG consumption. This
suite drives twin engine+queue stacks — one per scan mode — through an
identical seeded post/match workload across every queue family ×
{heated, unheated} × {soa, vec, reference} kernels and compares everything.

Also covered here: the ``REPRO_SCAN_BATCH`` resolution chain, NullPort's
O(1) run counters, the default per-slot fallback loop, LLA hole accounting
under both spellings (interior holes vs boundary-window tightening), and
repr-identity of reduced fig4/fig6 panels under both env values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_spatial_search_length, plan_temporal_msg_size
from repro.errors import ConfigurationError
from repro.exp import Runner
from repro.hotcache.heater import Heater, HeaterConfig
from repro.matching.ch4 import Ch4PerCommunicatorQueue
from repro.matching.engine import MatchEngine
from repro.matching.entry import MatchItem
from repro.matching.fourd import FourDimensionalQueue
from repro.matching.hashmap import BinnedHashQueue
from repro.matching.linkedlist import BaselineLinkedList
from repro.matching.lla import LinkedListOfArrays
from repro.matching.openmpi import OpenMpiHierarchicalQueue
from repro.matching.port import (
    SCAN_BATCH_ENV,
    MemoryPort,
    NullPort,
    emit_node_runs,
    resolve_scan_batch,
)
from repro.mem.cache import CLS_DEFAULT, CLS_NETWORK, EvictionPolicy
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.kernel import ALL_KERNELS
from repro.sim.clock import Clock

KERNELS = sorted(ALL_KERNELS)

FAMILIES = {
    "lla-2": lambda port: LinkedListOfArrays(2, port=port),
    "lla-8": lambda port: LinkedListOfArrays(8, port=port),
    "baseline": lambda port: BaselineLinkedList(port=port),
    "ch4": lambda port: Ch4PerCommunicatorQueue(port=port),
    "hashmap": lambda port: BinnedHashQueue(port=port),
    "fourd": lambda port: FourDimensionalQueue(port=port),
    "openmpi": lambda port: OpenMpiHierarchicalQueue(port=port),
}

#: Small geometry so the workload overflows the L1 and the run fast path
#: has to coexist with misses, evictions and per-probe replays.
GEOMETRY = dict(
    n_cores=2,
    l1_size=4096,
    l1_assoc=4,
    l1_latency=4.0,
    l2_size=16384,
    l2_assoc=4,
    l2_latency=12.0,
    l3_size=65536,
    l3_assoc=8,
    l3_latency=30.0,
    dram_latency=200.0,
)


def _mk_item(rng, seq, wild=False):
    ws = wild and rng.random() < 0.3
    wt = wild and rng.random() < 0.2
    return MatchItem(
        seq=seq,
        src=int(rng.integers(0, 8)),
        tag=int(rng.integers(0, 4)),
        cid=0,
        src_mask=0 if ws else 0xFFFFFFFF,
        tag_mask=0 if wt else 0xFFFFFFFF,
    )


def build_stack(kernel, family, scan_batch, heated, *, policy=EvictionPolicy.LRU):
    hier = MemoryHierarchy(
        policy=policy,
        rng=np.random.default_rng(1234),
        kernel=kernel,
        **GEOMETRY,
    )
    clock = Clock()
    engine = MatchEngine(hier, clock=clock, scan_batch=scan_batch)
    queue = FAMILIES[family](engine)
    heater = None
    if heated:
        heater = Heater(
            hier, 2.0, HeaterConfig(period_ns=500.0), region_provider=queue.regions
        )
        engine.attach_heater(heater)
    return hier, clock, engine, queue, heater


def drive(queue, *, seed=42, posts=250, ops=350):
    rng = np.random.default_rng(seed)
    seq = 0
    for _ in range(posts):
        queue.post(_mk_item(rng, seq))
        seq += 1
    for _ in range(ops):
        queue.match_remove(_mk_item(rng, 10**9, wild=True))
        if rng.random() < 0.5:
            queue.post(_mk_item(rng, seq))
            seq += 1


def signature(hier, clock, engine, queue, heater):
    """Every observable the equivalence contract covers, repr-encoded."""
    ls = engine.level_stats
    recency = []
    for cache in [hier.l3] + [c for core in hier.cores for c in (core.l1, core.l2)]:
        for idx in range(cache.nsets):
            recency.append(tuple(cache.recency(idx)))
    sig = {
        "clock": repr(clock.now),
        "loads": engine.loads,
        "stores": engine.stores,
        "load_cycles": repr(engine.load_cycles),
        "store_cycles": repr(engine.store_cycles_total),
        "level_stats": ls.snapshot() if hasattr(ls, "snapshot") else repr(vars(ls)),
        "level_cycles": repr(ls.cycles),
        "hier_stats": repr(hier.stats()),
        "recency": tuple(recency),
        "searches": queue.stats.searches,
        "probes": queue.stats.probes,
        "matches": queue.stats.matches,
        "live": len(queue),
        "items": tuple(i.seq for i in queue.iter_items()),
        "rng": repr(hier.l3._rng.bit_generator.state) if hier.l3._rng is not None else None,
    }
    if heater is not None:
        sig["heater"] = (heater.passes, repr(heater.busy_cycles), heater.lines_touched)
    return sig


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("heated", (False, True), ids=["cold", "heated"])
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_scan_modes_bit_identical(kernel, heated, family):
    slot_stack = build_stack(kernel, family, False, heated)
    run_stack = build_stack(kernel, family, True, heated)
    drive(slot_stack[3])
    drive(run_stack[3])
    assert run_stack[2].scan_batch and not slot_stack[2].scan_batch
    assert signature(*slot_stack) == signature(*run_stack)
    # The batched stack genuinely batched (every family coalesces runs on
    # these layouts) and the fast path actually fired.
    assert run_stack[2].runs > 0
    assert run_stack[2].fast_runs > 0
    assert slot_stack[2].runs == 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_scan_modes_bit_identical_random_policy(kernel):
    """RANDOM eviction consumes RNG on every miss fill: identical draws in
    identical order under both spellings, or recency/rng signatures split."""
    slot_stack = build_stack(
        kernel, "lla-8", False, False, policy=EvictionPolicy.RANDOM
    )
    run_stack = build_stack(
        kernel, "lla-8", True, False, policy=EvictionPolicy.RANDOM
    )
    drive(slot_stack[3], posts=400, ops=300)
    drive(run_stack[3], posts=400, ops=300)
    sig_slot = signature(*slot_stack)
    sig_run = signature(*run_stack)
    assert sig_slot["rng"] is not None
    assert sig_slot == sig_run


@pytest.mark.parametrize("kernel", KERNELS)
def test_scan_modes_bit_identical_saturated_heater(kernel):
    """A saturated heater charges interference per probe and can force the
    per-probe replay mid-run; both spellings must still agree exactly."""
    slot_stack = build_stack(kernel, "lla-8", False, False)
    run_stack = build_stack(kernel, "lla-8", True, False)
    for _, _, engine, queue, _ in (slot_stack, run_stack):
        heater = Heater(
            queue.port.hierarchy,
            2.0,
            # Tiny period: passes outrun it and the heater saturates.
            HeaterConfig(period_ns=1.0, interference_cycles=3.0),
            region_provider=queue.regions,
        )
        engine.attach_heater(heater)
        drive(queue, posts=120, ops=150)
    a = signature(slot_stack[0], slot_stack[1], slot_stack[2], slot_stack[3], None)
    b = signature(run_stack[0], run_stack[1], run_stack[2], run_stack[3], None)
    assert a == b


# -- mode resolution ---------------------------------------------------------


def test_resolve_default_is_on(monkeypatch):
    monkeypatch.delenv(SCAN_BATCH_ENV, raising=False)
    assert resolve_scan_batch() is True


def test_env_selects_off(monkeypatch):
    monkeypatch.setenv(SCAN_BATCH_ENV, "off")
    assert resolve_scan_batch() is False
    hier = MemoryHierarchy(**GEOMETRY)
    assert MatchEngine(hier).scan_batch is False


def test_argument_beats_environment(monkeypatch):
    monkeypatch.setenv(SCAN_BATCH_ENV, "off")
    assert resolve_scan_batch("on") is True
    assert resolve_scan_batch(True) is True
    hier = MemoryHierarchy(**GEOMETRY)
    assert MatchEngine(hier, scan_batch="on").scan_batch is True


def test_unknown_mode_rejected():
    with pytest.raises(ConfigurationError):
        resolve_scan_batch("sideways")


def test_software_prefetch_disables_batching(monkeypatch):
    """Batched scans reorder middleware hints ahead of the coalesced loads,
    so a live prefetcher forces the per-slot spelling regardless of mode."""
    monkeypatch.delenv(SCAN_BATCH_ENV, raising=False)
    hier = MemoryHierarchy(**GEOMETRY)
    engine = MatchEngine(hier, software_prefetch=True, scan_batch=True)
    assert engine.scan_batch is False


# -- port-level semantics ----------------------------------------------------


class _RecordingPort(MemoryPort):
    """Inherits the default load_run loop; records the loads it decays to."""

    scan_batch = True

    def __init__(self):
        self.calls = []

    def load(self, addr, nbytes):
        self.calls.append((addr, nbytes))

    def store(self, addr, nbytes):  # pragma: no cover - unused
        self.calls.append(("store", addr, nbytes))


def test_default_load_run_is_the_per_slot_loop():
    port = _RecordingPort()
    port.load_run(1000, 120, 3)
    assert port.calls == [(1000, 40), (1040, 40), (1080, 40)]


def test_default_load_run_with_spacing():
    port = _RecordingPort()
    port.load_run(1000, 120, 3, 56)
    assert port.calls == [(1000, 40), (1056, 40), (1112, 40)]


def test_load_run_rejects_uneven_split():
    port = _RecordingPort()
    with pytest.raises(ConfigurationError):
        port.load_run(1000, 100, 3)


def test_load_run_rejects_overlapping_spacing():
    port = _RecordingPort()
    with pytest.raises(ConfigurationError):
        port.load_run(1000, 120, 3, 39)


def test_load_run_zero_probes_is_noop():
    port = _RecordingPort()
    port.load_run(1000, 0, 0)
    assert port.calls == []


def test_nullport_run_counters_match_slot_loads():
    slot, run = NullPort(scan_batch=False), NullPort(scan_batch=True)
    for _ in range(4):
        slot.load(0x1000, 40)
    slot.load(0x2000, 64)
    run.load_run(0x1000, 160, 4)
    run.load(0x2000, 64)
    assert (run.loads, run.bytes_loaded) == (slot.loads, slot.bytes_loaded)
    assert (run.runs, run.run_probes) == (1, 4)
    assert (slot.runs, slot.run_probes) == (0, 0)
    run.reset()
    assert (run.runs, run.run_probes, run.loads) == (0, 0, 0)


def test_nullport_rejects_uneven_run():
    with pytest.raises(ConfigurationError):
        NullPort().load_run(0, 100, 3)


def test_emit_node_runs_coalesces_constant_stride():
    port = NullPort()
    # Two stride-56 stretches split by a gap, plus an isolated node.
    addrs = [0, 56, 112, 500, 556, 10_000]
    emit_node_runs(port, addrs, 40)
    assert port.loads == 6
    assert port.bytes_loaded == 6 * 40
    assert port.runs == 2
    assert port.run_probes == 5


def test_emit_node_runs_rejects_nothing_on_overlap():
    """Stride below the node size (recycled holes) stays per-slot loads."""
    port = NullPort()
    emit_node_runs(port, [0, 24, 48], 40)
    assert (port.loads, port.runs) == (3, 0)


def test_engine_run_counters(monkeypatch):
    monkeypatch.delenv(SCAN_BATCH_ENV, raising=False)
    hier = MemoryHierarchy(**GEOMETRY)
    engine = MatchEngine(hier)
    engine.load_run(0x1000, 160, 4)
    assert engine.loads == 4
    assert engine.runs == 1
    assert engine.run_probes == 4
    engine.reset_counters()
    assert (engine.runs, engine.run_probes, engine.fast_runs) == (0, 0, 0)


def test_scan_bracket_flushes_unmerged_header():
    """A pending header that is not contiguous with the run (or is followed
    by a store) must flush through the ordinary load path, in order."""
    hier_a = MemoryHierarchy(**GEOMETRY)
    hier_b = MemoryHierarchy(**GEOMETRY)
    a = MatchEngine(hier_a, scan_batch=True)
    b = MatchEngine(hier_b, scan_batch=False)
    # Non-contiguous header + run.
    a.begin_scan()
    a.load(0x8000, 8)
    a.load_run(0x9000, 120, 3)
    a.end_scan()
    b.load(0x8000, 8)
    for i in range(3):
        b.load(0x9000 + 40 * i, 40)
    # Header then store: the store must see the header already charged.
    a.begin_scan()
    a.load(0xA000, 8)
    a.store(0xA008, 24)
    a.end_scan()
    b.load(0xA000, 8)
    b.store(0xA008, 24)
    # Bracket closed with a pending header and no run at all.
    a.begin_scan()
    a.load(0xB000, 8)
    a.end_scan()
    b.load(0xB000, 8)
    assert repr(a.clock.now) == repr(b.clock.now)
    assert a.loads == b.loads and a.stores == b.stores
    assert repr(a.load_cycles) == repr(b.load_cycles)


# -- LLA hole accounting (both spellings) ------------------------------------


def _exact(item):
    return MatchItem(
        seq=item.seq, src=item.src, tag=item.tag, cid=item.cid,
        src_mask=0xFFFFFFFF, tag_mask=0xFFFFFFFF,
    )


@pytest.mark.parametrize("scan_batch", (False, True), ids=["slots", "runs"])
def test_lla_interior_hole_accounting(scan_batch):
    """Removing from the middle leaves a hole that later searches walk over
    (hole_probes) and hole_count reports, until window tightening or node
    drain reclaims it."""
    q = LinkedListOfArrays(8, port=NullPort(scan_batch=scan_batch))
    items = [MatchItem(seq=i, src=i, tag=0, cid=0) for i in range(8)]
    for item in items:
        q.post(item)
    assert q.hole_count() == 0
    # Interior removal: slots 3 stays inside the [0, 8) used window.
    assert q.match_remove(_exact(items[3])) is items[3]
    assert q.hole_count() == 1
    assert q.hole_probes == 0
    # A failed full scan walks over the hole exactly once.
    probe = MatchItem(seq=10**9, src=77, tag=0, cid=0)
    assert q.match_remove(probe) is None
    assert q.hole_probes == 1
    assert q.stats.last_probes == 7  # live slots only
    # A search that stops before the hole does not count it.
    assert q.match_remove(_exact(items[1])) is items[1]
    assert q.hole_probes == 1


@pytest.mark.parametrize("scan_batch", (False, True), ids=["slots", "runs"])
def test_lla_boundary_holes_tighten_window(scan_batch):
    """Holes at the window edges are reclaimed by start/end tightening, so
    they are neither counted nor walked."""
    q = LinkedListOfArrays(8, port=NullPort(scan_batch=scan_batch))
    items = [MatchItem(seq=i, src=i, tag=0, cid=0) for i in range(4)]
    for item in items:
        q.post(item)
    # Head removal tightens start past the hole immediately.
    assert q.match_remove(_exact(items[0])) is items[0]
    assert q.hole_count() == 0
    # Tail removal tightens end.
    assert q.match_remove(_exact(items[3])) is items[3]
    assert q.hole_count() == 0
    probe = MatchItem(seq=10**9, src=77, tag=0, cid=0)
    assert q.match_remove(probe) is None
    assert q.hole_probes == 0
    assert q.stats.last_probes == 2


@pytest.mark.parametrize("scan_batch", (False, True), ids=["slots", "runs"])
def test_lla_interior_then_boundary_reclaim(scan_batch):
    """An interior hole becomes a boundary hole once its neighbour leaves;
    tightening then reclaims both at once."""
    q = LinkedListOfArrays(8, port=NullPort(scan_batch=scan_batch))
    items = [MatchItem(seq=i, src=i, tag=0, cid=0) for i in range(3)]
    for item in items:
        q.post(item)
    assert q.match_remove(_exact(items[1])) is items[1]  # interior
    assert q.hole_count() == 1
    assert q.match_remove(_exact(items[0])) is items[0]  # head: both reclaimed
    assert q.hole_count() == 0
    assert len(q) == 1


def test_lla_hole_bookkeeping_identical_across_modes():
    """hole_probes/hole_count trajectories agree between the spellings on a
    churned workload."""
    qa = LinkedListOfArrays(4, port=NullPort(scan_batch=False))
    qb = LinkedListOfArrays(4, port=NullPort(scan_batch=True))
    for q in (qa, qb):
        rng = np.random.default_rng(7)
        seq = 0
        for _ in range(60):
            q.post(_mk_item(rng, seq))
            seq += 1
        for _ in range(120):
            q.match_remove(_mk_item(rng, 10**9, wild=True))
            if rng.random() < 0.4:
                q.post(_mk_item(rng, seq))
                seq += 1
    assert qa.hole_probes == qb.hole_probes
    assert qa.hole_count() == qb.hole_count()
    assert qa.port.loads == qb.port.loads
    assert qa.port.bytes_loaded == qb.port.bytes_loaded
    assert qb.port.runs > 0


# -- figure panels -----------------------------------------------------------


def _panel_reprs(monkeypatch, mode):
    monkeypatch.setenv(SCAN_BATCH_ENV, mode)
    fig4 = Runner(jobs=1).run_sweep(
        plan_spatial_search_length(
            SANDY_BRIDGE, msg_bytes=1, depths=(1, 16, 64), iterations=2, seed=0
        )
    )
    fig6 = Runner(jobs=1).run_sweep(
        plan_temporal_msg_size(
            SANDY_BRIDGE, depth=64, msg_sizes=(8, 1024), iterations=2, seed=0
        )
    )
    return repr(fig4), repr(fig6)


def test_fig_panels_repr_identical_across_scan_modes(monkeypatch):
    on4, on6 = _panel_reprs(monkeypatch, "on")
    off4, off6 = _panel_reprs(monkeypatch, "off")
    assert on4 == off4
    assert on6 == off6
