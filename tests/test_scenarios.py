"""Scenario registry: legacy-equivalence pins, schema validation, loading.

The equivalence classes embed *frozen copies* of the hand-rolled plan
builders the scenario built-ins replaced (taken verbatim from the
pre-refactor modules). Every refactored ``plan_*`` builder and CLI plan
must expand ``repr``-identical to its frozen reference — PointSpec sorts
its params, so repr equality pins kinds, series labels, x values, seeds,
and the exact parameter-key *presence* of every point.
"""

import json
from pathlib import Path

import pytest

from repro.arch import BROADWELL, NEHALEM, SANDY_BRIDGE
from repro.bench.osu import MSG_SIZE_SWEEP, SEARCH_LENGTH_SWEEP
from repro.errors import ConfigurationError, ScenarioError
from repro.exp import ExperimentPlan, encode_arch
from repro.mem.kernel import resolve_kernel
from repro.net.link import MELLANOX_QDR, OMNIPATH, QLOGIC_QDR
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    iter_axes,
    iter_scenarios,
    load_scenario,
    toml_available,
)

# ---------------------------------------------------------------------------
# Frozen legacy constructions (pre-refactor builder bodies, copied verbatim).
# ---------------------------------------------------------------------------

SPATIAL_VARIANTS = (
    ("baseline", "baseline", False),
    ("LLA - 2", "lla-2", False),
    ("LLA - 4", "lla-4", False),
    ("LLA - 8", "lla-8", False),
    ("LLA - 16", "lla-16", False),
    ("LLA - 32", "lla-32", False),
)

TEMPORAL_VARIANTS = (
    ("baseline", "baseline", False),
    ("HC", "baseline", True),
    ("LLA", "lla-2", False),
    ("HC+LLA", "lla-2", True),
)


def legacy_variant_grid_plan(
    arch, variants, *, title, xlabel, x_axis, msg_bytes, depth, xs, iterations, seed
):
    link = OMNIPATH if arch.name == "broadwell" else QLOGIC_QDR
    kernel = resolve_kernel(None)
    plan = ExperimentPlan(title=title, xlabel=xlabel, ylabel="bandwidth (MiBps)")
    arch_enc = encode_arch(arch)
    for label, family, heated in variants:
        for x in xs:
            plan.add_point(
                "osu",
                label,
                float(x),
                seed=seed,
                arch=arch_enc,
                link=link.name,
                queue_family=family,
                heated=heated,
                msg_bytes=int(x) if x_axis == "msg_bytes" else msg_bytes,
                search_depth=int(x) if x_axis == "depth" else depth,
                iterations=iterations,
                mem_kernel=kernel,
            )
    return plan


def legacy_spatial_msg_size(arch, *, msg_sizes=None, iterations=10, seed=0, depth=1024):
    return legacy_variant_grid_plan(
        arch,
        SPATIAL_VARIANTS,
        title=f"Impact of spatial locality ({arch.name}), queue depth {depth}",
        xlabel="msg size per process (B)",
        x_axis="msg_bytes",
        msg_bytes=1,
        depth=depth,
        xs=msg_sizes if msg_sizes is not None else MSG_SIZE_SWEEP,
        iterations=iterations,
        seed=seed,
    )


def legacy_spatial_search_length(arch, *, msg_bytes=1, depths=None, iterations=10, seed=0):
    return legacy_variant_grid_plan(
        arch,
        SPATIAL_VARIANTS,
        title=f"Impact of spatial locality ({arch.name}), {msg_bytes} B messages",
        xlabel="Posted Receive Queue Search Length",
        x_axis="depth",
        msg_bytes=msg_bytes,
        depth=0,
        xs=depths if depths is not None else SEARCH_LENGTH_SWEEP,
        iterations=iterations,
        seed=seed,
    )


def legacy_temporal_msg_size(arch, *, msg_sizes=None, iterations=10, seed=0, depth=1024):
    return legacy_variant_grid_plan(
        arch,
        TEMPORAL_VARIANTS,
        title=f"Impact of temporal locality ({arch.name}), queue depth {depth}",
        xlabel="msg size per process (B)",
        x_axis="msg_bytes",
        msg_bytes=1,
        depth=depth,
        xs=msg_sizes if msg_sizes is not None else MSG_SIZE_SWEEP,
        iterations=iterations,
        seed=seed,
    )


def legacy_temporal_search_length(arch, *, msg_bytes=1, depths=None, iterations=10, seed=0):
    return legacy_variant_grid_plan(
        arch,
        TEMPORAL_VARIANTS,
        title=f"Impact of temporal locality ({arch.name}), {msg_bytes} B messages",
        xlabel="Posted Receive Queue Search Length",
        x_axis="depth",
        msg_bytes=msg_bytes,
        depth=0,
        xs=depths if depths is not None else SEARCH_LENGTH_SWEEP,
        iterations=iterations,
        seed=seed,
    )


def legacy_fig8_plan(*, arch=BROADWELL, scales=(128, 256, 512, 1024),
                     families=("baseline", "lla-2"), seed=0):
    kernel = resolve_kernel(None)
    plan = ExperimentPlan(
        title="AMG2013 scaling (Broadwell)",
        xlabel="Process Count",
        ylabel="Execution Time (s)",
    )
    arch_enc = encode_arch(arch)
    for family in families:
        label = "Baseline" if family == "baseline" else "LLA"
        for nranks in scales:
            plan.add_point(
                "app",
                label,
                float(nranks),
                seed=seed,
                app="amg2013",
                arch=arch_enc,
                link=OMNIPATH.name,
                nranks=int(nranks),
                queue_family=family,
                fragmented=family == "baseline",
                mem_kernel=kernel,
            )
    return plan


def legacy_fig9_plan(*, arch=BROADWELL, lengths=(128, 512, 2048),
                     families=("baseline", "lla-2"), nranks=512, seed=0):
    kernel = resolve_kernel(None)
    plan = ExperimentPlan(
        title=f"MiniFE at {nranks} processes (Broadwell)",
        xlabel="Match list Length",
        ylabel="Execution Time (s)",
    )
    arch_enc = encode_arch(arch)
    for family in families:
        label = "Baseline" if family == "baseline" else "LLA"
        for length in lengths:
            plan.add_point(
                "app",
                label,
                float(length),
                seed=seed,
                app="minife",
                match_list_length=int(length),
                arch=arch_enc,
                link=OMNIPATH.name,
                nranks=int(nranks),
                queue_family=family,
                mem_kernel=kernel,
            )
    return plan


FIG10_SCALES = (128, 256, 512, 1024, 2048, 4096, 8192)
FIG10_VARIANTS = (
    ("HC Nehalem", "nehalem", "baseline", True),
    ("LLA Nehalem", "nehalem", "lla-2", False),
    ("HC+LLA Nehalem", "nehalem", "lla-2", True),
    ("LLA Broadwell", "broadwell", "lla-2", False),
    ("LLA-Large", "nehalem", "lla-large", False),
)


def _legacy_fig10_params(arch_name, family, heated, nranks):
    arch = NEHALEM if arch_name == "nehalem" else BROADWELL
    link = MELLANOX_QDR if arch_name == "nehalem" else OMNIPATH
    return dict(
        app="fds",
        arch=encode_arch(arch),
        link=link.name,
        nranks=int(nranks),
        queue_family=family,
        heated=heated,
        fragmented=family == "baseline",
    )


def legacy_fig10_plan(*, scales=FIG10_SCALES, variants=FIG10_VARIANTS, seed=0):
    kernel = resolve_kernel(None)
    plan = ExperimentPlan(
        title="Fire Dynamics Simulator scaling",
        xlabel="Process Count",
        ylabel="Factor Speedup Over Baseline",
    )
    arch_names = list(dict.fromkeys(v[1] for v in variants))
    for nranks in scales:
        for arch_name in arch_names:
            plan.add_point(
                "app",
                f"baseline/{arch_name}",
                float(nranks),
                seed=seed,
                mem_kernel=kernel,
                **_legacy_fig10_params(arch_name, "baseline", False, nranks),
            )
    for label, arch_name, family, heated in variants:
        for nranks in scales:
            plan.add_point(
                "app",
                label,
                float(nranks),
                seed=seed,
                mem_kernel=kernel,
                **_legacy_fig10_params(arch_name, family, heated, nranks),
            )
    return plan


def legacy_colocated_plan(arch, *, rank_counts=(1, 2, 4, 8),
                          mechanisms=("none", "hot-caching", "cat-partition"),
                          depth=2048, working_set_bytes=4 * 1024 * 1024,
                          iterations=2, seed=0):
    kernel = resolve_kernel(None)
    plan = ExperimentPlan(
        title=f"Co-located capacity pressure ({arch.name})",
        xlabel="co-located ranks",
        ylabel="cycles/search",
    )
    arch_enc = encode_arch(arch)
    for mechanism in mechanisms:
        for nranks in rank_counts:
            plan.add_point(
                "colocated",
                mechanism,
                float(nranks),
                seed=seed,
                arch=arch_enc,
                mechanism=mechanism,
                ranks=int(nranks),
                depth=depth,
                working_set_bytes=working_set_bytes,
                iterations=iterations,
                mem_kernel=kernel,
            )
    return plan


def legacy_heater_micro_plan(archs, *, region_bytes=4 * 1024 * 1024, samples=2048, seed=0):
    kernel = resolve_kernel(None)
    plan = ExperimentPlan(
        title="Section 4.3 cache-heater random-access micro-benchmark",
        xlabel="arch",
        ylabel="ns / iteration (cold)",
    )
    for i, arch in enumerate(archs):
        plan.add_point(
            "heater-micro",
            arch.name,
            float(i),
            seed=seed,
            arch=encode_arch(arch),
            region_bytes=region_bytes,
            samples=samples,
            mem_kernel=kernel,
        )
    return plan


_ABLATION_VARIANTS = (
    ("baseline", {}),
    ("hot caching", {"heated": True}),
    ("CAT partition (4 ways)", {"partition_ways": 4}),
    ("dedicated net cache 2KiB", {"network_cache_bytes": 2048}),
)


def legacy_ablation_plan(*, quick=False, seed=0):
    plan = ExperimentPlan(
        title="Semi-permanent cache occupancy proposals (section 4.6)",
        xlabel="occupancy mechanism",
        ylabel="bandwidth (MiBps), 1B msgs",
    )
    for arch in (SANDY_BRIDGE, BROADWELL):
        link = OMNIPATH if arch.name == "broadwell" else QLOGIC_QDR
        for label, extra in _ABLATION_VARIANTS:
            plan.add_point(
                "osu",
                f"{arch.name}: {label}",
                0.0,
                seed=seed,
                arch=encode_arch(arch),
                link=link.name,
                queue_family="baseline",
                msg_bytes=1,
                search_depth=64 if quick else 512,
                iterations=3 if quick else 10,
                mem_kernel=resolve_kernel(None),
                **extra,
            )
    return plan


def legacy_offload_plan(*, quick=False, seed=0):
    depths = (64, 1024, 4000, 16384) if not quick else (64, 4000)
    plan = ExperimentPlan(
        title="Hardware matching offload and its capacity cliff (section 2.2)",
        xlabel="queue depth",
        ylabel="cycles/search",
    )
    for nic_label in ("software-only", "psm2-like", "bxi-like"):
        for depth in depths:
            plan.add_point(
                "offload",
                nic_label,
                float(depth),
                seed=seed,
                arch="sandy-bridge",
                nic=nic_label,
                depth=int(depth),
                mem_kernel=resolve_kernel(None),
            )
    return plan


def assert_plans_identical(got, want):
    assert repr(got) == repr(want)


# ---------------------------------------------------------------------------
# Equivalence: refactored builders vs the frozen legacy constructions.
# ---------------------------------------------------------------------------


class TestFigureEquivalence:
    @pytest.mark.parametrize("arch", [SANDY_BRIDGE, BROADWELL], ids=lambda a: a.name)
    def test_spatial_msg_size(self, arch):
        from repro.bench.figures import plan_spatial_msg_size

        assert_plans_identical(plan_spatial_msg_size(arch), legacy_spatial_msg_size(arch))

    @pytest.mark.parametrize("arch", [SANDY_BRIDGE, BROADWELL], ids=lambda a: a.name)
    def test_spatial_search_length(self, arch):
        from repro.bench.figures import plan_spatial_search_length

        for msg_bytes in (1, 4096):
            assert_plans_identical(
                plan_spatial_search_length(arch, msg_bytes=msg_bytes),
                legacy_spatial_search_length(arch, msg_bytes=msg_bytes),
            )

    def test_temporal_msg_size(self):
        from repro.bench.figures import plan_temporal_msg_size

        assert_plans_identical(
            plan_temporal_msg_size(SANDY_BRIDGE), legacy_temporal_msg_size(SANDY_BRIDGE)
        )

    def test_temporal_search_length(self):
        from repro.bench.figures import plan_temporal_search_length

        assert_plans_identical(
            plan_temporal_search_length(BROADWELL, msg_bytes=4096),
            legacy_temporal_search_length(BROADWELL, msg_bytes=4096),
        )

    def test_overridden_grid_and_seed(self):
        from repro.bench.figures import plan_spatial_msg_size

        assert_plans_identical(
            plan_spatial_msg_size(SANDY_BRIDGE, msg_sizes=[1, 64], iterations=3, seed=7),
            legacy_spatial_msg_size(SANDY_BRIDGE, msg_sizes=[1, 64], iterations=3, seed=7),
        )

    def test_quick_scenario_matches_legacy_quick_lists(self):
        # The CLI --quick path: scenario quick() == the historical hardcoded
        # quick lists (sizes/depths/iterations) the fig commands passed.
        plan = (
            get_scenario("spatial-msg-size")
            .quick()
            .with_overrides(base={"arch": "broadwell"})
            .expand()
        )
        assert_plans_identical(
            plan,
            legacy_spatial_msg_size(
                BROADWELL, msg_sizes=[1, 64, 1024, 65536, 1 << 20], iterations=3
            ),
        )
        plan = (
            get_scenario("temporal-search-length")
            .quick()
            .with_overrides(base={"arch": "sandy-bridge", "msg_bytes": 4096})
            .expand()
        )
        assert_plans_identical(
            plan,
            legacy_temporal_search_length(
                SANDY_BRIDGE, msg_bytes=4096, depths=[1, 8, 64, 512, 1024, 4096],
                iterations=3,
            ),
        )


class TestAppEquivalence:
    def test_fig8(self):
        from repro.apps.amg2013 import fig8_plan

        assert_plans_identical(fig8_plan(), legacy_fig8_plan())
        assert_plans_identical(
            fig8_plan(scales=(128, 512), seed=3), legacy_fig8_plan(scales=(128, 512), seed=3)
        )

    def test_fig9(self):
        from repro.apps.minife import fig9_plan

        assert_plans_identical(fig9_plan(), legacy_fig9_plan())
        assert_plans_identical(
            fig9_plan(lengths=(128,), families=("baseline",)),
            legacy_fig9_plan(lengths=(128,), families=("baseline",)),
        )

    def test_fig10(self):
        from repro.apps.fds import fig10_plan

        assert_plans_identical(fig10_plan(), legacy_fig10_plan())
        assert_plans_identical(
            fig10_plan(scales=(1024, 4096, 8192), seed=1),
            legacy_fig10_plan(scales=(1024, 4096, 8192), seed=1),
        )


class TestStudyEquivalence:
    def test_colocated(self):
        from repro.bench.colocated import colocated_plan

        assert_plans_identical(colocated_plan(BROADWELL), legacy_colocated_plan(BROADWELL))
        assert_plans_identical(
            colocated_plan(SANDY_BRIDGE, rank_counts=(1, 4), iterations=1),
            legacy_colocated_plan(SANDY_BRIDGE, rank_counts=(1, 4), iterations=1),
        )

    def test_colocated_core_budget_still_enforced(self):
        from repro.bench.colocated import colocated_plan

        with pytest.raises(ConfigurationError, match="cores"):
            colocated_plan(SANDY_BRIDGE)  # 8 ranks + heater > 8 cores

    def test_heater_micro(self):
        from repro.bench.heater_micro import heater_micro_plan

        assert_plans_identical(
            heater_micro_plan((SANDY_BRIDGE, BROADWELL)),
            legacy_heater_micro_plan((SANDY_BRIDGE, BROADWELL)),
        )
        assert_plans_identical(
            heater_micro_plan((BROADWELL,), samples=512, seed=2),
            legacy_heater_micro_plan((BROADWELL,), samples=512, seed=2),
        )

    @pytest.mark.parametrize("quick", [False, True], ids=["full", "quick"])
    def test_ablation(self, quick):
        spec = get_scenario("ablation")
        if quick:
            spec = spec.quick()
        assert_plans_identical(spec.expand(), legacy_ablation_plan(quick=quick))

    @pytest.mark.parametrize("quick", [False, True], ids=["full", "quick"])
    def test_offload(self, quick):
        spec = get_scenario("offload")
        if quick:
            spec = spec.quick()
        assert_plans_identical(
            spec.with_overrides(seed=5).expand(), legacy_offload_plan(quick=quick, seed=5)
        )


# ---------------------------------------------------------------------------
# Schema validation: config mistakes fail loudly, with the legal values.
# ---------------------------------------------------------------------------

_MINIMAL = {
    "name": "t",
    "kind": "osu",
    "x": "msg_bytes",
    "base": {"arch": "sandy-bridge", "link": "auto"},
    "matrix": {"msg_bytes": [1, 64]},
}


def _spec(**overrides):
    mapping = {**_MINIMAL, **overrides}
    return ScenarioSpec.from_mapping(mapping)


class TestSchemaValidation:
    def test_unknown_axis_lists_registered_ones(self):
        with pytest.raises(ScenarioError, match="unknown scenario axis 'msg_size'"):
            _spec(matrix={"msg_size": [1]})

    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown key"):
            ScenarioSpec.from_mapping({**_MINIMAL, "serie": "{msg_bytes}"})

    def test_bad_matrix_value_type(self):
        with pytest.raises(ScenarioError, match="non-empty list"):
            _spec(matrix={"msg_bytes": 64})

    def test_bad_axis_value_reports_expectation(self):
        spec = _spec(base={"arch": "sandy-bridge", "link": "auto",
                           "queue_family": "lla-banana"})
        with pytest.raises(ScenarioError, match="axis 'queue_family': bad value"):
            spec.expand()

    def test_unknown_arch_lists_presets(self):
        spec = _spec(base={"arch": "zen5"})
        with pytest.raises(ScenarioError, match="broadwell"):
            spec.expand()

    def test_missing_producer_kind(self):
        spec = _spec(kind="fpga")
        with pytest.raises(ScenarioError, match="no producer registered for point kind 'fpga'"):
            spec.expand()

    def test_missing_matrix(self):
        with pytest.raises(ScenarioError, match="matrix"):
            ScenarioSpec.from_mapping({"name": "t", "kind": "osu", "x": "msg_bytes"})

    def test_matrix_and_grids_exclusive(self):
        with pytest.raises(ScenarioError, match="mutually exclusive"):
            ScenarioSpec.from_mapping({**_MINIMAL, "grids": []})

    def test_bad_series_template(self):
        spec = _spec(series="{queue_family}")
        with pytest.raises(ScenarioError, match="series.*template"):
            spec.expand()

    def test_x_must_be_an_axis_of_the_grid(self):
        spec = _spec(x="search_depth")
        with pytest.raises(ScenarioError, match="x = 'search_depth'"):
            spec.expand()

    def test_override_must_hit_a_grid(self):
        with pytest.raises(ScenarioError, match="no grid of scenario"):
            get_scenario("ablation").with_overrides(matrix={"nranks": [1]})

    def test_unknown_scenario_lists_registered(self):
        with pytest.raises(ScenarioError, match="unknown scenario 'nope'"):
            get_scenario("nope")

    def test_auto_link_requires_arch(self):
        spec = ScenarioSpec.from_mapping({
            "name": "t", "kind": "osu", "x": "msg_bytes",
            "base": {"link": "auto"}, "matrix": {"msg_bytes": [1]},
        })
        with pytest.raises(ScenarioError, match="'auto' needs an 'arch'"):
            spec.expand()

    def test_variant_value_requires_label(self):
        spec = _spec(matrix={"variant": [{"queue_family": "baseline"}],
                             "msg_bytes": [1]})
        with pytest.raises(ScenarioError, match="label"):
            spec.expand()

    def test_scenario_error_is_a_configuration_error(self):
        # Existing guards that catch ConfigurationError keep working.
        assert issubclass(ScenarioError, ConfigurationError)


# ---------------------------------------------------------------------------
# Registry and axis enumeration (what `repro list` renders).
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        names = {s.name for s in iter_scenarios()}
        assert {
            "spatial-msg-size", "spatial-search-length",
            "temporal-msg-size", "temporal-search-length",
            "fig8-amg", "fig9-minife", "fig10-fds",
            "heater-micro", "colocated", "ablation", "offload",
            "traffic-overload", "prefetch-chase",
        } <= names

    def test_total_points_matches_expansion(self):
        for spec in iter_scenarios():
            assert spec.total_points() == len(spec.expand().points)

    def test_axes_enumerable(self):
        axes = {a.name: a for a in iter_axes()}
        assert "arch" in axes and "queue_family" in axes and "msg_bytes" in axes
        assert all(a.help and a.values for a in axes.values())

    def test_overrides_do_not_mutate_the_registered_spec(self):
        spec = get_scenario("offload")
        before = repr(spec.expand())
        spec.with_overrides(matrix={"depth": [64]}, seed=9).expand()
        assert repr(get_scenario("offload").expand()) == before


# ---------------------------------------------------------------------------
# The pointer-chase prefetcher ablation scenario.
# ---------------------------------------------------------------------------


class TestPrefetchChaseScenario:
    def test_builtin_registered_and_expands(self):
        spec = get_scenario("prefetch-chase")
        plan = spec.quick().expand()
        assert len(plan.points) == 24  # 8 variants x 3 depths
        labels = {p.series for p in plan.points}
        assert "baseline" in labels and "baseline+chase" in labels
        assert "LLA - 8" in labels and "LLA - 8 +chase" in labels
        # Every point carries the prefetcher mode and the churned heap.
        assert {p.kwargs["prefetcher"] for p in plan.points} == {"default", "chase"}
        assert all(p.kwargs["fragmented"] for p in plan.points)

    def test_bad_prefetcher_value_lists_modes(self):
        spec = get_scenario("prefetch-chase").with_overrides(
            base={"prefetcher": "psychic"})
        with pytest.raises(ScenarioError, match="chase-only"):
            spec.expand()

    def test_runs_end_to_end_and_chase_beats_default_at_small_depth(self):
        from repro.exp import Runner

        spec = get_scenario("prefetch-chase").with_overrides(
            base={"iterations": 3},
            matrix={
                "variant": [
                    {"label": "baseline", "queue_family": "baseline",
                     "prefetcher": "default"},
                    {"label": "baseline+chase", "queue_family": "baseline",
                     "prefetcher": "chase"},
                ],
                "search_depth": [64],
            },
        )
        plan = spec.expand()
        for p in plan.points:
            assert dict(p.params)["search_depth"] == 64
        sweep = Runner().run_sweep(plan)
        y = {name: series.y[0] for name, series in sweep.series.items()}
        # At a depth well inside the successor table, the chase unit's
        # run-ahead must beat the spatial units on a churned-heap list.
        assert y["baseline+chase"] > y["baseline"]


# ---------------------------------------------------------------------------
# The open-loop traffic scenario: axes, validation, end-to-end run.
# ---------------------------------------------------------------------------

_TRAFFIC_MINIMAL = {
    "name": "tt",
    "kind": "traffic",
    "x": "arrival_rate",
    "base": {
        "arch": "sandy-bridge",
        "n_warmup": 5,
        "n_measured": 20,
        "n_tags": 8,
        "queue_capacity": 16,
    },
    "matrix": {"arrival_rate": [0.2]},
}


def _traffic_spec(**overrides):
    return ScenarioSpec.from_mapping({**_TRAFFIC_MINIMAL, **overrides})


class TestTrafficScenario:
    def test_builtin_registered_and_expands(self):
        spec = get_scenario("traffic-overload")
        plan = spec.quick().expand()
        assert len(plan.points) == 12  # 4 variants x 3 rates
        assert {p.series for p in plan.points} == {
            "baseline", "HC", "LLA - 8", "HC+LLA - 8",
        }
        assert all(p.kind == "traffic" for p in plan.points)

    def test_bad_arrival_rate_is_actionable(self):
        spec = _traffic_spec(matrix={"arrival_rate": [0.0]})
        with pytest.raises(
            ScenarioError, match="arrivals per simulated microsecond"
        ):
            spec.expand()
        spec = _traffic_spec(matrix={"arrival_rate": [-1.5]})
        with pytest.raises(ScenarioError, match="axis 'arrival_rate'"):
            spec.expand()

    def test_bad_zipf_alpha_is_actionable(self):
        spec = _traffic_spec(base={**_TRAFFIC_MINIMAL["base"], "zipf_alpha": -0.5})
        with pytest.raises(ScenarioError, match="Zipf popularity exponent"):
            spec.expand()

    def test_non_numeric_rate_rejected(self):
        spec = _traffic_spec(matrix={"arrival_rate": ["fast"]})
        with pytest.raises(ScenarioError, match="axis 'arrival_rate'"):
            spec.expand()

    def test_unknown_metric_lists_choices(self):
        spec = _traffic_spec(base={**_TRAFFIC_MINIMAL["base"], "metric": "latency"})
        with pytest.raises(ScenarioError, match="p99_sojourn_us"):
            spec.expand()

    def test_unknown_admission_policy_rejected(self):
        spec = _traffic_spec(base={**_TRAFFIC_MINIMAL["base"], "admission": "random"})
        with pytest.raises(ScenarioError, match="drop-tail"):
            spec.expand()

    def test_runs_end_to_end_and_capacity_zero_is_unbounded(self):
        from repro.exp import Runner

        plan = _traffic_spec(
            base={**_TRAFFIC_MINIMAL["base"], "queue_capacity": 0},
            matrix={"arrival_rate": [0.2, 1.2]},
            series="cap0",
        ).expand()
        sweep = Runner().run_sweep(plan)
        (series,) = sweep.series.values()
        assert series.x == [0.2, 1.2]
        assert all(y >= 0 for y in series.y)
        # capacity 0 in a spec means unbounded (TOML has no null): nothing
        # may be rejected even at the overloaded rate.
        from repro.exp.producers import producer_for

        for point in plan.points:
            result = producer_for("traffic")(dict(point.params), seed=0)
            assert result.extras["rejected"] == 0.0


# ---------------------------------------------------------------------------
# File loading (JSON everywhere; TOML where a parser exists).
# ---------------------------------------------------------------------------


class TestLoader:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(_MINIMAL), encoding="utf-8")
        spec = load_scenario(path)
        assert spec.name == "t"
        assert len(spec.expand().points) == 2

    def test_name_defaults_to_stem(self, tmp_path):
        mapping = {k: v for k, v in _MINIMAL.items() if k != "name"}
        path = tmp_path / "my_sweep.json"
        path.write_text(json.dumps(mapping), encoding="utf-8")
        assert load_scenario(path).name == "my_sweep"

    def test_invalid_json_reports_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario(path)

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("x: 1", encoding="utf-8")
        with pytest.raises(ScenarioError, match="unknown scenario suffix"):
            load_scenario(path)

    @pytest.mark.skipif(not toml_available(), reason="no TOML parser on this Python")
    def test_toml_roundtrip(self, tmp_path):
        path = tmp_path / "mini.toml"
        path.write_text(
            'name = "t"\nkind = "osu"\nx = "msg_bytes"\n'
            '[base]\narch = "sandy-bridge"\nlink = "auto"\n'
            "[matrix]\nmsg_bytes = [1, 64]\n",
            encoding="utf-8",
        )
        spec = load_scenario(path)
        json_spec = ScenarioSpec.from_mapping(dict(_MINIMAL))
        assert repr(spec.expand()) == repr(json_spec.expand())

    @pytest.mark.skipif(not toml_available(), reason="no TOML parser on this Python")
    def test_scenario_wrapper_table(self, tmp_path):
        path = tmp_path / "wrapped.toml"
        path.write_text(
            '[scenario]\nname = "t"\nkind = "osu"\nx = "msg_bytes"\n'
            '[scenario.base]\narch = "sandy-bridge"\nlink = "auto"\n'
            "[scenario.matrix]\nmsg_bytes = [1]\n",
            encoding="utf-8",
        )
        assert load_scenario(path).name == "t"


# ---------------------------------------------------------------------------
# The shipped examples expand (and the new-variant one runs end-to-end).
# ---------------------------------------------------------------------------

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


class TestExamples:
    def test_fig4_quick_example_is_a_subset_of_the_figure(self):
        spec = load_scenario(f"{EXAMPLES}/fig4_quick.toml") if toml_available() else None
        if spec is None:
            pytest.skip("no TOML parser on this Python")
        plan = spec.expand()
        reference = {
            repr(p)
            for p in legacy_spatial_msg_size(
                SANDY_BRIDGE, msg_sizes=[1, 64, 1024, 65536, 1 << 20], iterations=3
            ).points
        }
        assert len(plan.points) == 20
        assert {repr(p) for p in plan.points} <= reference

    def test_fig6_quick_json_example(self):
        spec = load_scenario(f"{EXAMPLES}/fig6_quick.json")
        plan = spec.expand()
        assert len(plan.points) == 12
        assert {p.series for p in plan.points} == {"baseline", "HC", "LLA", "HC+LLA"}

    def test_traffic_overload_example_matches_builtin(self):
        # The shipped TOML spec is the builtin scenario, loadable from file
        # on Pythons that have a TOML parser (3.9 CI uses the builtin).
        if not toml_available():
            pytest.skip("no TOML parser on this Python")
        spec = load_scenario(f"{EXAMPLES}/traffic_overload.toml")
        builtin = get_scenario("traffic-overload")
        assert len(spec.expand().points) == len(builtin.expand().points) == 24
        strip = lambda plan: {  # noqa: E731 - local one-liner
            repr(p).replace(spec.name, builtin.name) for p in plan.points
        }
        assert strip(spec.expand()) == strip(builtin.expand())
        assert len(spec.quick().expand().points) == 12

    def test_queue_arch_matrix_runs_end_to_end(self):
        # The acceptance scenario: a queue-family x arch grid no bespoke
        # driver ever existed for, runnable purely from config.
        if not toml_available():
            pytest.skip("no TOML parser on this Python")
        from repro.exp import Runner

        spec = load_scenario(f"{EXAMPLES}/queue_arch_matrix.toml")
        plan = spec.with_overrides(matrix={"search_depth": [64]}).expand()
        assert len(plan.points) == 8
        sweep = Runner().run_sweep(plan)
        assert set(sweep.series) == {
            f"{family}/{arch}"
            for family in ("baseline", "lla-4", "hash-64", "fourd")
            for arch in ("sandy-bridge", "broadwell")
        }
        for series in sweep.series.values():
            assert series.x == [64.0]
            assert series.y[0] > 0
