"""Tests for the supervised sweep service (repro.service).

The load-bearing property is double equivalence: every submission's
results must be repr-identical to a fault-free serial Runner.run of the
same plan, *and* overlapping concurrent submissions must simulate each
shared point exactly once. Everything else — admission, journals, the
job-directory protocol — is verified around that invariant. The chaos
paths (stalls, crashes, rot, SIGKILL) live in test_service_chaos.py.
"""

import json

import pytest

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_spatial_search_length, plan_temporal_msg_size
from repro.errors import AdmissionError, ConfigurationError, ServiceError
from repro.exp import ExperimentPlan, ResultStore, Runner
from repro.service import (
    CheckpointJournal,
    JobDirectory,
    Submission,
    SweepService,
    build_plan,
    serve,
)


def fig4_plan():
    return plan_spatial_search_length(
        SANDY_BRIDGE, msg_bytes=1, depths=(1, 16, 64), iterations=2, seed=0
    )


def fig6_plan():
    return plan_temporal_msg_size(
        SANDY_BRIDGE, depth=64, msg_sizes=(8, 1024), iterations=2, seed=0
    )


def serial_sweep(plan):
    return plan.reduce(Runner(jobs=1).run(plan))


def empty_plan():
    return ExperimentPlan(title="empty", xlabel="x", ylabel="y")


class TestEquivalenceAndDedup:
    def test_three_concurrent_overlapping_submissions(self, tmp_path):
        """The acceptance property: N=3 concurrent submissions of
        overlapping grids are repr-identical to fault-free serial runs,
        and every shared point is simulated exactly once."""
        plan_a, plan_b, plan_c = fig4_plan(), fig4_plan(), fig6_plan()
        want_46 = repr(serial_sweep(fig4_plan()))
        want_6 = repr(serial_sweep(fig6_plan()))
        store = ResultStore(tmp_path / "store")
        with SweepService(jobs=2, store=store) as service:
            subs = [
                service.submit(plan_a, name="a"),
                service.submit(plan_b, name="b"),
                service.submit(plan_c, name="c"),
            ]
            results = [s.wait(timeout=120) for s in subs]
        assert repr(plan_a.reduce(results[0])) == want_46
        assert repr(plan_b.reduce(results[1])) == want_46
        assert repr(plan_c.reduce(results[2])) == want_6
        # fig4 submitted twice + disjoint fig6: distinct work only.
        assert service.stats.executed == len(plan_a) + len(plan_c)
        assert service.stats.shared == len(plan_b)
        # Per-submission accounting: every point in exactly one bucket.
        for sub in subs:
            r = sub.report
            assert r.executed + r.cached + r.shared + r.replayed == r.total
            assert r.failed == 0 and r.state == "done"
        # The store holds exactly the distinct points (no duplicates).
        assert store.stats().entries == len(plan_a) + len(plan_c)

    def test_warm_store_serves_everything_from_cache(self, tmp_path):
        plan = fig6_plan()
        store = ResultStore(tmp_path / "store")
        with SweepService(jobs=2, store=store) as first:
            first.submit(plan, name="cold").wait(timeout=120)
        with SweepService(jobs=2, store=store) as second:
            sub = second.submit(fig6_plan(), name="warm")
            results = sub.wait(timeout=120)
        assert sub.report.cached == len(plan) and sub.report.executed == 0
        assert second.stats.executed == 0
        assert repr(plan.reduce(results)) == repr(serial_sweep(fig6_plan()))

    def test_sequential_submissions_without_store_recompute(self):
        """The in-flight registry dedups *concurrent* overlap only; with
        no store, a later identical submission recomputes (documented)."""
        with SweepService(jobs=1) as service:
            service.submit(fig6_plan(), name="one").wait(timeout=120)
            sub = service.submit(fig6_plan(), name="two")
            sub.wait(timeout=120)
        assert sub.report.executed == len(fig6_plan())

    def test_zero_point_plan_completes_immediately(self):
        with SweepService(jobs=1) as service:
            sub = service.submit(empty_plan(), name="nothing")
            assert sub.wait(timeout=10) == []
        assert sub.state == "done" and sub.report.total == 0

    def test_submission_sweep_matches_plan_reduce(self):
        plan = fig6_plan()
        with SweepService(jobs=2) as service:
            sub = service.submit(plan, name="s")
            sweep = sub.sweep(timeout=120)
        assert repr(sweep) == repr(serial_sweep(fig6_plan()))


class TestAdmission:
    def test_drop_tail_rejects_beyond_capacity(self):
        """With the supervisor not yet draining, the queue bound is exact:
        submissions beyond capacity are rejected, never queued."""
        service = SweepService(jobs=1, queue_capacity=1)
        first = service.submit(fig6_plan(), name="first")
        with pytest.raises(AdmissionError, match="queue full"):
            service.submit(fig6_plan(), name="second")
        assert service.try_submit(fig6_plan(), name="third") is None
        adm = service.admission
        assert (adm.offered, adm.accepted, adm.rejected) == (3, 1, 2)
        # The admitted submission is fully served once the service starts.
        service.start()
        results = first.wait(timeout=120)
        service.shutdown()
        assert all(r is not None for r in results)

    def test_capacity_frees_as_submissions_finish(self):
        with SweepService(jobs=1, queue_capacity=1) as service:
            a = service.submit(empty_plan(), name="a")
            a.wait(timeout=10)
            # Slot released: the next submission is admitted.
            b = service.submit(empty_plan(), name="b")
            b.wait(timeout=10)
        assert service.admission.rejected == 0
        assert service.stats.completed == 2

    def test_submit_after_shutdown_refused(self):
        service = SweepService(jobs=1).start()
        service.shutdown()
        with pytest.raises(ServiceError, match="shutting down"):
            service.submit(fig6_plan())

    def test_constructor_validation(self):
        for kwargs in (
            {"jobs": 0},
            {"queue_capacity": 0},
            {"retries": -1},
            {"heartbeat_s": 0.0},
            {"backoff_s": -1.0},
            {"max_pool_rebuilds": -1},
        ):
            with pytest.raises(ConfigurationError):
                SweepService(**kwargs)


class TestShutdown:
    def test_drain_finishes_admitted_work(self):
        service = SweepService(jobs=2).start()
        sub = service.submit(fig6_plan(), name="draining")
        service.shutdown(drain=True)
        assert sub.done and sub.report.state == "done"
        assert all(r is not None for r in sub.results)

    def test_abort_completes_handles_without_hanging(self):
        service = SweepService(jobs=2).start()
        sub = service.submit(fig4_plan(), name="aborted")
        service.shutdown(drain=False)
        # Whatever finished was kept; the handle is released either way.
        assert sub.done
        assert sub.report.state in ("done", "aborted")

    def test_context_manager_drains(self):
        with SweepService(jobs=1) as service:
            sub = service.submit(fig6_plan(), name="ctx")
        assert sub.done and all(r is not None for r in sub.results)
        assert service.stats.completed == 1


class TestJournalRecovery:
    def test_restart_replays_completed_points(self, tmp_path):
        """A finished submission resubmitted after a service restart is
        served entirely from its journal — no store, no recompute."""
        plan = fig6_plan()
        jdir = tmp_path / "journals"
        with SweepService(jobs=2, journal_dir=jdir) as first:
            first.submit(plan, name="resume-me").wait(timeout=120)
        with SweepService(jobs=2, journal_dir=jdir) as second:
            sub = second.submit(fig6_plan(), name="resume-me")
            results = sub.wait(timeout=120)
        assert sub.report.replayed == len(plan)
        assert sub.report.executed == 0 and second.stats.executed == 0
        assert repr(plan.reduce(results)) == repr(serial_sweep(fig6_plan()))

    def test_mismatched_plan_rotates_journal_aside(self, tmp_path):
        jdir = tmp_path / "journals"
        with SweepService(jobs=1, journal_dir=jdir) as first:
            first.submit(fig6_plan(), name="shape").wait(timeout=120)
        # Same submission name, different plan: the journal must refuse.
        with SweepService(jobs=1, journal_dir=jdir) as second:
            sub = second.submit(fig4_plan(), name="shape")
            sub.wait(timeout=120)
        assert sub.report.replayed == 0
        assert sub.report.executed == len(fig4_plan())
        assert (jdir / "shape.jsonl.stale").exists()

    def test_torn_tail_recovers_intact_prefix(self, tmp_path):
        plan = fig6_plan()
        jdir = tmp_path / "journals"
        with SweepService(jobs=1, journal_dir=jdir) as first:
            first.submit(plan, name="torn").wait(timeout=120)
        path = jdir / "torn.jsonl"
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        # Keep header + 3 records, then a half-written record (the kill
        # landed mid-write): exactly what a SIGKILL can leave behind.
        path.write_text("".join(lines[:4]) + lines[4][: len(lines[4]) // 2])
        journal = CheckpointJournal(path, fig6_plan(), name="torn")
        replayed = journal.replay()
        assert len(replayed) == 3
        with SweepService(jobs=1, journal_dir=jdir) as second:
            sub = second.submit(fig6_plan(), name="torn")
            results = sub.wait(timeout=120)
        assert sub.report.replayed == 3
        assert sub.report.executed == len(plan) - 3
        assert repr(plan.reduce(results)) == repr(serial_sweep(fig6_plan()))

    def test_journal_records_cached_points_too(self, tmp_path):
        """Store hits are journaled as well, so recovery never depends on
        the store still being intact at restart time."""
        plan = fig6_plan()
        store = ResultStore(tmp_path / "store")
        with SweepService(jobs=1, store=store) as warmup:
            warmup.submit(plan, name="warmup").wait(timeout=120)
        jdir = tmp_path / "journals"
        with SweepService(jobs=1, store=store, journal_dir=jdir) as svc:
            sub = svc.submit(fig6_plan(), name="cached-run")
            sub.wait(timeout=120)
        assert sub.report.cached == len(plan)
        journal = CheckpointJournal(jdir / "cached-run.jsonl", fig6_plan(), name="cached-run")
        assert len(journal.replay()) == len(plan)


class TestStoreLifecycle:
    def test_startup_integrity_sweep_quarantines_rot(self, tmp_path):
        plan = fig6_plan()
        store = ResultStore(tmp_path / "store")
        with SweepService(jobs=1, store=store) as warmup:
            warmup.submit(plan, name="w").wait(timeout=120)
        store.corrupt(plan.points[0])
        fresh = ResultStore(tmp_path / "store")
        with SweepService(jobs=1, store=fresh) as svc:
            sub = svc.submit(fig6_plan(), name="after-rot")
            results = sub.wait(timeout=120)
        assert svc.swept_corrupt == 1
        assert fresh.stats().corrupt == 1
        # Only the rotted point recomputed; the figure is unchanged.
        assert sub.report.executed == 1 and sub.report.cached == len(plan) - 1
        assert repr(plan.reduce(results)) == repr(serial_sweep(fig6_plan()))

    def test_max_store_bytes_evicts_at_startup(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with SweepService(jobs=1, store=store) as warmup:
            warmup.submit(fig6_plan(), name="w").wait(timeout=120)
        before = store.stats().entry_bytes
        assert before > 0
        with SweepService(jobs=1, store=ResultStore(tmp_path / "store"),
                          max_store_bytes=before // 2) as svc:
            assert svc.store.stats().entry_bytes <= before // 2
        assert svc.store.evicted > 0

    def test_status_document_shape(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with SweepService(jobs=1, store=store) as svc:
            svc.submit(fig6_plan(), name="doc").wait(timeout=120)
            doc = svc.status()
        assert doc["admission"]["accepted"] == 1
        assert doc["service"]["executed"] == len(fig6_plan())
        assert doc["store"]["entries"] == len(fig6_plan())
        (sub_doc,) = doc["submissions"]
        assert sub_doc["name"] == "doc" and sub_doc["state"] == "done"
        json.dumps(doc)  # must be JSON-serializable as-is


def tiny_scenario(tmp_path, n_points=2, name="tiny"):
    doc = {
        "name": name,
        "kind": "osu",
        "x": "msg_bytes",
        "base": {"arch": "sandy-bridge", "link": "auto", "depth": 16, "iterations": 2},
        "matrix": {"msg_bytes": [1 << i for i in range(n_points)]},
        "seed": 3,
    }
    path = tmp_path / f"{name}.json"
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


class TestJobDirectory:
    def test_submit_claim_roundtrip(self, tmp_path):
        jobdir = JobDirectory(tmp_path / "jd")
        scenario = tiny_scenario(tmp_path)
        job_id = jobdir.submit(str(scenario), quick=False, seed=7)
        (queued,) = jobdir.pending()
        request = jobdir.claim(queued)
        assert request["job"] == job_id and request["seed"] == 7
        assert jobdir.pending() == []
        assert (jobdir.jobs_dir / job_id / "request.json").exists()

    def test_build_plan_is_deterministic(self, tmp_path):
        scenario = tiny_scenario(tmp_path)
        request = {"scenario": str(scenario), "quick": False, "seed": 5}
        first, second = build_plan(request), build_plan(dict(request))
        assert first.fingerprint() == second.fingerprint()
        assert len(first) == 2

    def test_build_plan_rejects_missing_scenario(self):
        with pytest.raises(ConfigurationError, match="no scenario"):
            build_plan({"quick": True})

    def test_orphans_are_unfinished_claims(self, tmp_path):
        jobdir = JobDirectory(tmp_path / "jd")
        scenario = tiny_scenario(tmp_path)
        done_id = jobdir.submit(str(scenario), job_id="done-job")
        orphan_id = jobdir.submit(str(scenario), job_id="orphan-job")
        for queued in jobdir.pending():
            jobdir.claim(queued)
        jobdir.write_state(done_id, {"job": done_id, "state": "done"})
        (orphan,) = jobdir.orphans()
        assert orphan["job"] == orphan_id

    def test_duplicate_job_id_refused(self, tmp_path):
        jobdir = JobDirectory(tmp_path / "jd")
        scenario = tiny_scenario(tmp_path)
        jobdir.submit(str(scenario), job_id="twin")
        with pytest.raises(ServiceError, match="already exists"):
            jobdir.submit(str(scenario), job_id="twin")

    def test_serve_runs_queued_jobs_to_done(self, tmp_path):
        jobdir = JobDirectory(tmp_path / "jd")
        scenario = tiny_scenario(tmp_path)
        a = jobdir.submit(str(scenario), job_id="job-a")
        b = jobdir.submit(str(scenario), job_id="job-b")
        service = SweepService(jobs=2, store=ResultStore(tmp_path / "store"))
        finished = serve(jobdir, service, poll_s=0.02, max_idle_s=0.2)
        assert finished == 2
        status = jobdir.status()
        states = {j["job"]: j["state"] for j in status["jobs"]}
        assert states == {a: "done", b: "done"}
        # Identical jobs: the second one shared every point of the first.
        assert service.stats.executed == 2
        assert service.stats.shared + service.stats.cached == 2
        rows = json.loads(
            (jobdir.jobs_dir / a / "result.json").read_text(encoding="utf-8")
        )["rows"]
        assert len(rows) == 2 and all("y" in r for r in rows)
        assert status["service"]["pid"]

    def test_serve_marks_bad_scenario_failed(self, tmp_path):
        jobdir = JobDirectory(tmp_path / "jd")
        bad = tmp_path / "nope.json"
        bad.write_text(json.dumps({"name": "nope"}), encoding="utf-8")
        jobdir.submit(str(bad), job_id="bad-job")
        finished = serve(jobdir, SweepService(jobs=1), poll_s=0.02, max_idle_s=0.2)
        assert finished == 1
        (job,) = jobdir.status()["jobs"]
        assert job["state"] == "failed" and "error" in job

    def test_serve_recovers_orphaned_jobs_from_journals(self, tmp_path):
        """A claimed-but-unfinished job (dead server) is requeued on the
        next serve and resumes from its journal with zero recompute."""
        jobdir = JobDirectory(tmp_path / "jd")
        scenario = tiny_scenario(tmp_path)
        job_id = jobdir.submit(str(scenario), job_id="orphan")
        service = SweepService(jobs=1)
        finished = serve(jobdir, service, poll_s=0.02, max_idle_s=0.2)
        assert finished == 1
        # Forge the dead-server situation: job claimed, journal complete,
        # but no terminal state written.
        jobdir.write_state(job_id, {"job": job_id, "state": "running"})
        second = SweepService(jobs=1)
        finished = serve(jobdir, second, poll_s=0.02, max_idle_s=0.2)
        assert finished == 1
        assert second.stats.replayed == 2 and second.stats.executed == 0
        (job,) = jobdir.status()["jobs"]
        assert job["state"] == "done"


class TestSubmissionHandle:
    def test_wait_timeout_raises(self):
        sub = Submission("stuck", fig6_plan())
        with pytest.raises(ServiceError, match="did not finish"):
            sub.wait(timeout=0.05)
