"""Chaos tests for the sweep service: the robustness acceptance suite.

Each test injects one service-level failure mode — client death at submit
time, silent worker stalls under the heartbeat watchdog, store bit-rot
during concurrent access, and a real ``kill -9`` of a serving process —
and asserts the two properties that make the service trustworthy:

* no point is ever lost or duplicated (every slot filled exactly once,
  or reported failed — never silently absent, never computed twice when
  a journal/store/registry already holds it);
* whatever survives is repr-identical to a fault-free serial run.
"""

import json
import os
import signal
import subprocess
import sys
import time
import warnings

import pytest

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_temporal_msg_size
from repro.errors import ConfigurationError, InjectedFaultError
from repro.exp import ResultStore, Runner
from repro.faults import ServiceFault, ServiceFaultPlan
from repro.service import JobDirectory, SweepService


def fig6_plan():
    return plan_temporal_msg_size(
        SANDY_BRIDGE, depth=64, msg_sizes=(8, 1024), iterations=2, seed=0
    )


def serial_sweep(plan):
    return plan.reduce(Runner(jobs=1).run(plan))


class TestFaultPlanGrammar:
    def test_parse_describe_roundtrip(self):
        spec = "submit-crash@1,worker-stall@3:0.5,store-rot@0"
        plan = ServiceFaultPlan.parse(spec)
        assert plan.describe() == ["submit-crash@1", "worker-stall@3:0.5", "store-rot@0"]
        assert len(plan) == 3 and bool(plan)

    def test_stall_defaults_long(self):
        plan = ServiceFaultPlan.parse("worker-stall@2")
        action = plan.stall_for(2)
        assert action is not None and action.kind == "hang" and action.seconds == 30.0
        assert plan.stall_for(1) is None

    def test_queries_address_occurrences(self):
        plan = ServiceFaultPlan.parse("submit-crash@1,store-rot@2")
        assert not plan.submit_crashes(0) and plan.submit_crashes(1)
        assert not plan.rots_put(0) and plan.rots_put(2)

    def test_bad_specs_are_configuration_errors(self):
        for bad in ("stall@1", "worker-stall", "worker-stall@x", "worker-stall@1:2:3"):
            with pytest.raises(ConfigurationError, match="bad service fault"):
                ServiceFaultPlan.parse(bad)
        with pytest.raises(ConfigurationError, match="unknown service fault"):
            ServiceFault(kind="nap", index=0)
        with pytest.raises(ConfigurationError, match=">= 0"):
            ServiceFault(kind="store-rot", index=-1)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_INJECT_SERVICE_FAULTS", raising=False)
        assert ServiceFaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_INJECT_SERVICE_FAULTS", "store-rot@1")
        plan = ServiceFaultPlan.from_env()
        assert plan is not None and plan.rots_put(1)


class TestSubmitCrash:
    def test_service_survives_client_death_at_submit(self):
        fault = ServiceFaultPlan.parse("submit-crash@1")
        with SweepService(jobs=1, fault_plan=fault) as service:
            first = service.submit(fig6_plan(), name="before")
            with pytest.raises(InjectedFaultError, match="submit-crash"):
                service.submit(fig6_plan(), name="victim")
            third = service.submit(fig6_plan(), name="after")
            results_first = first.wait(timeout=120)
            results_third = third.wait(timeout=120)
        # The crashed client held no slot and scheduled no work; everyone
        # else is served completely and correctly.
        want = repr(serial_sweep(fig6_plan()))
        assert repr(fig6_plan().reduce(results_first)) == want
        assert repr(fig6_plan().reduce(results_third)) == want
        assert service.admission.offered == 3 and service.admission.accepted == 2
        assert service.stats.submitted == 2 and service.stats.completed == 2


class TestWorkerStall:
    def test_watchdog_quarantines_stall_and_retries(self):
        """A silently stalled worker is detected by the heartbeat deadline,
        the pool is rebuilt, the point retried: no loss, no duplication,
        results identical to a fault-free serial run."""
        plan = fig6_plan()
        fault = ServiceFaultPlan.parse("worker-stall@1:30")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with SweepService(jobs=2, heartbeat_s=0.3, retries=1,
                              backoff_s=0.01, fault_plan=fault) as service:
                sub = service.submit(plan, name="stalled")
                results = sub.wait(timeout=120)
        assert service.stats.stalled == 1
        assert service.stats.pool_rebuilds >= 1
        assert sub.report.retried == 1 and sub.report.failed == 0
        assert all(r is not None for r in results)
        assert repr(plan.reduce(results)) == repr(serial_sweep(fig6_plan()))

    def test_stall_without_retries_fails_only_that_point(self):
        plan = fig6_plan()
        fault = ServiceFaultPlan.parse("worker-stall@0:30")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with SweepService(jobs=2, heartbeat_s=0.3, retries=0,
                              fault_plan=fault) as service:
                sub = service.submit(plan, name="lossy")
                results = sub.wait(timeout=120)
        assert service.stats.stalled == 1
        assert sub.report.failed == 1
        assert sum(1 for r in results if r is None) == 1
        (note,) = sub.report.failures
        assert "stall" in note
        # Everything that survived is still bit-correct.
        want = serial_sweep(fig6_plan())
        got = plan.reduce(results, allow_missing=True)
        for label, series in got.series.items():
            for x, y in zip(series.x, series.y):
                assert want.series[label].at(x) == y


class TestStoreRot:
    def test_rot_during_concurrent_access_is_contained(self, tmp_path):
        """An entry rotted mid-service hurts nobody: concurrent readers
        already hold their results, the next service's integrity sweep
        quarantines it, and exactly one point recomputes."""
        plan = fig6_plan()
        store = ResultStore(tmp_path / "store")
        fault = ServiceFaultPlan.parse("store-rot@0")
        with SweepService(jobs=2, store=store, fault_plan=fault) as service:
            a = service.submit(plan, name="a")
            b = service.submit(fig6_plan(), name="b")
            results_a, results_b = a.wait(timeout=120), b.wait(timeout=120)
        assert service.stats.rot_injected == 1
        want = repr(serial_sweep(fig6_plan()))
        assert repr(plan.reduce(results_a)) == want
        assert repr(fig6_plan().reduce(results_b)) == want
        # Startup of the next service finds and quarantines the rot...
        fresh = ResultStore(tmp_path / "store")
        with SweepService(jobs=2, store=fresh) as second:
            c = second.submit(fig6_plan(), name="c")
            results_c = c.wait(timeout=120)
        assert second.swept_corrupt == 1
        # ...and only the rotted point recomputes; nothing lost, nothing
        # duplicated, figure unchanged.
        assert c.report.executed == 1 and c.report.cached == len(plan) - 1
        assert repr(fig6_plan().reduce(results_c)) == want


_KILL_SCENARIO = {
    "name": "kill-me",
    "kind": "osu",
    "x": "iterations",
    "base": {"arch": "sandy-bridge", "link": "auto", "depth": 256, "msg_bytes": 8},
    "matrix": {"iterations": list(range(2, 26))},
    "seed": 3,
}

_SERVE_DRIVER = """\
import sys
from repro.service import JobDirectory, SweepService, serve

service = SweepService(jobs=2)
finished = serve(JobDirectory(sys.argv[1]), service, poll_s=0.02, max_idle_s=0.3)
stats = service.stats
print(f"SERVED {finished} replayed={stats.replayed} executed={stats.executed}")
"""


class TestSigkillRecovery:
    @pytest.mark.timeout(120)
    def test_kill_dash_nine_resumes_with_zero_recompute(self, tmp_path):
        """SIGKILL a serving process mid-sweep; a restarted server on the
        same job directory replays the journal and recomputes only the
        points that never completed."""
        total = len(_KILL_SCENARIO["matrix"]["iterations"])
        scenario = tmp_path / "kill-me.json"
        scenario.write_text(json.dumps(_KILL_SCENARIO), encoding="utf-8")
        driver = tmp_path / "driver.py"
        driver.write_text(_SERVE_DRIVER, encoding="utf-8")
        jobdir = JobDirectory(tmp_path / "jd")
        job_id = jobdir.submit(str(scenario), job_id="victim")
        journal_path = jobdir.journals_dir / "victim.jsonl"

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        # Pin the first life open: one dispatched point hangs far longer
        # than the test, and with no heartbeat configured the server waits
        # on it forever — so the kill window cannot be missed, while the
        # other worker keeps journaling completed points.
        env["REPRO_INJECT_SERVICE_FAULTS"] = "worker-stall@3:600"
        first = subprocess.Popen(
            [sys.executable, str(driver), str(jobdir.root)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    lines = journal_path.read_text(encoding="utf-8").count("\n")
                except OSError:
                    lines = 0
                if lines >= 6:  # header + >= 5 completed points on disk
                    break
                assert first.poll() is None, "server exited before the kill"
                time.sleep(0.02)
            else:
                pytest.fail("server never journaled enough points to kill")
            os.kill(first.pid, signal.SIGKILL)
        finally:
            first.wait(timeout=30)
        assert first.returncode == -signal.SIGKILL

        recorded = journal_path.read_text(encoding="utf-8").count("\n") - 1
        assert recorded >= 5

        env.pop("REPRO_INJECT_SERVICE_FAULTS")
        second = subprocess.run(
            [sys.executable, str(driver), str(jobdir.root)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            timeout=120, text=True,
        )
        assert second.returncode == 0, second.stdout
        (line,) = [l for l in second.stdout.splitlines() if l.startswith("SERVED")]
        _, finished, replayed_f, executed_f = line.split()
        replayed = int(replayed_f.split("=")[1])
        executed = int(executed_f.split("=")[1])
        assert int(finished) == 1
        # Zero recomputation: every journaled point replayed, the rest —
        # and only the rest — executed. (>= because the dying server may
        # have journaled a final point after our last read.)
        assert replayed >= recorded
        assert executed == total - replayed

        # No loss, no duplication: the journal ends with exactly one
        # record per point, and the job is done with a full result set.
        doc_lines = journal_path.read_text(encoding="utf-8").splitlines()
        indices = [json.loads(l)["i"] for l in doc_lines[1:]]
        assert sorted(indices) == list(range(total))
        status = jobdir.status()
        (job,) = status["jobs"]
        assert job["job"] == job_id and job["state"] == "done"
        rows = json.loads(
            (jobdir.jobs_dir / job_id / "result.json").read_text(encoding="utf-8")
        )["rows"]
        assert len(rows) == total
