"""Tests for repro.sim.clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import Clock, cycles_to_ns, cycles_to_seconds, ns_to_cycles


class TestConversions:
    def test_cycles_to_ns(self):
        assert cycles_to_ns(2600.0, 2.6) == pytest.approx(1000.0)

    def test_ns_to_cycles_roundtrip(self):
        assert ns_to_cycles(cycles_to_ns(12345.0, 2.1), 2.1) == pytest.approx(12345.0)

    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(2.6e9, 2.6) == pytest.approx(1.0)

    def test_zero_frequency_rejected(self):
        with pytest.raises(SimulationError):
            cycles_to_ns(1.0, 0.0)
        with pytest.raises(SimulationError):
            ns_to_cycles(1.0, -1.0)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(42.0).now == 42.0

    def test_advance_accumulates(self):
        c = Clock()
        c.advance(10.0)
        c.advance(5.5)
        assert c.now == pytest.approx(15.5)

    def test_advance_returns_now(self):
        c = Clock(1.0)
        assert c.advance(2.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            Clock().advance(-1.0)

    def test_advance_to(self):
        c = Clock()
        c.advance_to(100.0)
        assert c.now == 100.0

    def test_advance_to_past_rejected(self):
        c = Clock(50.0)
        with pytest.raises(SimulationError):
            c.advance_to(49.0)

    def test_advance_to_same_time_ok(self):
        c = Clock(50.0)
        assert c.advance_to(50.0) == 50.0

    def test_reset(self):
        c = Clock()
        c.advance(99.0)
        c.reset()
        assert c.now == 0.0

    def test_ns_helper(self):
        c = Clock()
        c.advance(2600.0)
        assert c.ns(2.6) == pytest.approx(1000.0)

    def test_zero_advance_allowed(self):
        c = Clock(7.0)
        c.advance(0.0)
        assert c.now == 7.0
