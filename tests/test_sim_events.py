"""Tests for repro.sim.events: ordering, cancellation, run_until."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestScheduling:
    def test_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, log.append, "c")
        q.schedule(1.0, log.append, "a")
        q.schedule(2.0, log.append, "b")
        q.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        log = []
        for name in "abcde":
            q.schedule(5.0, log.append, name)
        q.run()
        assert log == list("abcde")

    def test_now_advances_to_event_time(self):
        q = EventQueue()
        q.schedule(7.5, lambda: None)
        q.step()
        assert q.now == 7.5

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.step()
        with pytest.raises(SimulationError):
            q.schedule(4.0, lambda: None)

    def test_schedule_in_relative(self):
        q = EventQueue()
        q.schedule(2.0, lambda: None)
        q.step()
        ev = q.schedule_in(3.0, lambda: None)
        assert ev.time == pytest.approx(5.0)

    def test_events_scheduled_during_run(self):
        q = EventQueue()
        log = []

        def first():
            log.append("first")
            q.schedule_in(1.0, lambda: log.append("second"))

        q.schedule(1.0, first)
        q.run()
        assert log == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_not_run(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, log.append, "x")
        q.schedule(2.0, log.append, "y")
        ev.cancel()
        q.run()
        assert log == ["y"]

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 2.0


class TestRunUntil:
    def test_run_until_stops_at_deadline(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, log.append, "a")
        q.schedule(5.0, log.append, "b")
        q.run_until(3.0)
        assert log == ["a"]
        assert q.now == 3.0

    def test_run_until_includes_boundary(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, log.append, "a")
        q.run_until(3.0)
        assert log == ["a"]

    def test_step_on_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_run_returns_count(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), lambda: None)
        assert q.run() == 5

    def test_runaway_guard(self):
        q = EventQueue()

        def reschedule():
            q.schedule_in(1.0, reschedule)

        q.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            q.run(max_events=100)
