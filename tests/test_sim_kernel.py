"""Tests for the coroutine DES kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator, Timeout, Waiter


class TestTimeout:
    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_process_sleeps(self):
        sim = Simulator()
        times = []

        def proc():
            yield Timeout(5.0)
            times.append(sim.now)
            yield Timeout(2.5)
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [5.0, 7.5]

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, delay):
            for i in range(3):
                yield Timeout(delay)
                log.append((name, sim.now))

        sim.spawn(proc("fast", 1.0))
        sim.spawn(proc("slow", 2.0))
        sim.run()
        # At t=2.0 both fire; slow's timeout was scheduled first (at t=0)
        # so deterministic FIFO tie-breaking runs it first.
        assert log == [
            ("fast", 1.0),
            ("slow", 2.0),
            ("fast", 2.0),
            ("fast", 3.0),
            ("slow", 4.0),
            ("slow", 6.0),
        ]


class TestWaiter:
    def test_trigger_resumes_with_value(self):
        sim = Simulator()
        w = Waiter()
        got = []

        def consumer():
            value = yield w
            got.append(value)

        def producer():
            yield Timeout(3.0)
            w.trigger(sim, "payload")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == ["payload"]

    def test_pretriggered_waiter_returns_immediately(self):
        sim = Simulator()
        w = Waiter()
        w.trigger(sim, 42)
        got = []

        def consumer():
            got.append((yield w))

        sim.spawn(consumer())
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        w = Waiter()
        w.trigger(sim)
        with pytest.raises(SimulationError):
            w.trigger(sim)

    def test_multiple_waiters_released(self):
        sim = Simulator()
        w = Waiter()
        got = []

        def consumer(name):
            yield w
            got.append(name)

        sim.spawn(consumer("a"))
        sim.spawn(consumer("b"))

        def producer():
            yield Timeout(1.0)
            w.trigger(sim)

        sim.spawn(producer())
        sim.run()
        assert sorted(got) == ["a", "b"]


class TestJoin:
    def test_yielding_process_joins(self):
        sim = Simulator()

        def child():
            yield Timeout(4.0)
            return "result"

        def parent():
            value = yield sim.spawn(child(), "child")
            assert value == "result"
            return sim.now

        p = sim.spawn(parent(), "parent")
        sim.run()
        assert p.finished and p.result == 4.0

    def test_join_already_finished(self):
        sim = Simulator()

        def child():
            return "done"
            yield  # pragma: no cover

        c = sim.spawn(child())
        sim.run()

        def parent():
            value = yield c
            return value

        p = sim.spawn(parent())
        sim.run()
        assert p.result == "done"

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_all_finished(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        sim.spawn(proc())
        assert not sim.all_finished()
        sim.run()
        assert sim.all_finished()

    def test_run_until_partial(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        p = sim.spawn(proc())
        sim.run(until=5.0)
        assert not p.finished
        sim.run()
        assert p.finished
