"""Tests for SpinLock windows and KernelLock FIFO handoff."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator, Timeout
from repro.sim.resources import KernelLock, SpinLock


class TestSpinLock:
    def test_uncontended_acquire_is_free(self):
        lock = SpinLock()
        assert lock.acquire(now=10.0) == 0.0
        assert lock.contended == 0

    def test_acquire_inside_window_waits_remainder(self):
        lock = SpinLock()
        lock.hold(start=100.0, duration=50.0)
        assert lock.acquire(now=120.0) == pytest.approx(30.0)
        assert lock.contended == 1

    def test_acquire_after_window_free(self):
        lock = SpinLock()
        lock.hold(start=100.0, duration=50.0)
        assert lock.acquire(now=151.0) == 0.0

    def test_acquire_before_window_free(self):
        lock = SpinLock()
        lock.hold(start=100.0, duration=50.0)
        assert lock.acquire(now=99.0) == 0.0

    def test_own_hold_recorded(self):
        lock = SpinLock()
        lock.acquire(now=10.0, hold_for=5.0)
        assert lock.acquire(now=12.0) == pytest.approx(3.0)

    def test_wait_cycles_accumulate(self):
        lock = SpinLock()
        lock.hold(0.0, 100.0)
        lock.acquire(now=40.0)
        lock.hold(0.0, 100.0)
        lock.acquire(now=90.0)
        assert lock.wait_cycles == pytest.approx(70.0)

    def test_negative_hold_rejected(self):
        with pytest.raises(SimulationError):
            SpinLock().hold(0.0, -1.0)

    def test_reset_stats(self):
        lock = SpinLock()
        lock.hold(0.0, 10.0)
        lock.acquire(5.0)
        lock.reset_stats()
        assert lock.acquisitions == 0
        assert lock.wait_cycles == 0.0


class TestKernelLock:
    def test_mutual_exclusion_and_fifo(self):
        sim = Simulator()
        lock = KernelLock()
        log = []

        def proc(name, work):
            yield from lock.acquire(sim)
            log.append(f"{name}:in@{sim.now}")
            yield Timeout(work)
            log.append(f"{name}:out@{sim.now}")
            lock.release(sim)

        sim.spawn(proc("a", 5.0))
        sim.spawn(proc("b", 3.0))
        sim.spawn(proc("c", 1.0))
        sim.run()
        assert log == [
            "a:in@0.0",
            "a:out@5.0",
            "b:in@5.0",
            "b:out@8.0",
            "c:in@8.0",
            "c:out@9.0",
        ]

    def test_release_unlocked_raises(self):
        sim = Simulator()
        lock = KernelLock()
        with pytest.raises(SimulationError):
            lock.release(sim)

    def test_contention_counted(self):
        sim = Simulator()
        lock = KernelLock()

        def proc():
            yield from lock.acquire(sim)
            yield Timeout(1.0)
            lock.release(sim)

        for _ in range(3):
            sim.spawn(proc())
        sim.run()
        assert lock.acquisitions == 3
        assert lock.contended == 2
