"""Tests for repro.sim.rng: determinism and stream independence."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sim.rng import RngRegistry, stream_seed


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed(0, "a") == stream_seed(0, "a")

    def test_name_sensitivity(self):
        assert stream_seed(0, "a") != stream_seed(0, "b")

    def test_seed_sensitivity(self):
        assert stream_seed(0, "a") != stream_seed(1, "a")

    def test_63_bit_range(self):
        for seed in (0, 1, 12345):
            for name in ("x", "longer-name", ""):
                s = stream_seed(seed, name)
                assert 0 <= s < 2**63

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=30))
    def test_stable_under_hypothesis(self, seed, name):
        assert stream_seed(seed, name) == stream_seed(seed, name)

    def test_golden_values_pinned(self):
        # Cross-run / cross-machine stability: stored experiment results key
        # on these derivations, so a silent change to the hash would corrupt
        # every cache. Update only with a deliberate format bump.
        assert stream_seed(0, "traffic:arrivals") == 8455840670720828437
        assert stream_seed(7, "traffic:tags") == 6495074506536572804


class TestRngRegistry:
    def test_same_name_same_generator(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("x").integers(0, 1 << 30, size=10)
        b = RngRegistry(7).stream("x").integers(0, 1 << 30, size=10)
        assert np.array_equal(a, b)

    def test_different_names_give_different_sequences(self):
        reg = RngRegistry(7)
        a = reg.stream("x").integers(0, 1 << 30, size=10)
        b = reg.stream("y").integers(0, 1 << 30, size=10)
        assert not np.array_equal(a, b)

    def test_fresh_restarts_sequence(self):
        reg = RngRegistry(7)
        first = reg.stream("x").integers(0, 1 << 30, size=5)
        restarted = reg.fresh("x").integers(0, 1 << 30, size=5)
        assert np.array_equal(first, restarted)

    def test_spawn_is_independent(self):
        reg = RngRegistry(7)
        child = reg.spawn("sub")
        a = reg.fresh("x").integers(0, 1 << 30, size=5)
        b = child.fresh("x").integers(0, 1 << 30, size=5)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic(self):
        a = RngRegistry(7).spawn("sub").stream("x").integers(0, 1 << 30, size=5)
        b = RngRegistry(7).spawn("sub").stream("x").integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_traffic_streams_statistically_independent(self):
        # The open-loop workload draws arrivals, tags, and source ranks from
        # sibling named streams of one registry; a correlated pair would bias
        # e.g. popular tags toward short inter-arrival gaps. Check pairwise
        # sample correlations stay near zero over a decent draw.
        reg = RngRegistry(0)
        names = (
            "traffic:arrivals", "traffic:tags", "traffic:ranks",
            "traffic:recv-tags", "traffic:reservoir",
        )
        draws = {name: reg.stream(name).random(4096) for name in names}
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                corr = np.corrcoef(draws[a], draws[b])[0, 1]
                assert abs(corr) < 0.08, f"{a} vs {b}: corr={corr:.3f}"
