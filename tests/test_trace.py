"""Tests for trace recording, serialization, and replay."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import SANDY_BRIDGE
from repro.errors import ConfigurationError
from repro.matching import ANY_SOURCE, ANY_TAG, Envelope, make_queue
from repro.mpi.message import Message
from repro.trace import (
    ARRIVAL,
    POST,
    RecordingProcess,
    TraceEvent,
    TraceRecorder,
    dumps,
    loads,
    read_trace,
    replay,
    write_trace,
)

_event_st = st.one_of(
    st.builds(
        TraceEvent,
        kind=st.just(POST),
        src=st.one_of(st.just(ANY_SOURCE), st.integers(0, 5)),
        tag=st.one_of(st.just(ANY_TAG), st.integers(0, 5)),
        cid=st.integers(0, 2),
        nbytes=st.integers(0, 4096),
    ),
    st.builds(
        TraceEvent,
        kind=st.just(ARRIVAL),
        src=st.integers(0, 5),
        tag=st.integers(0, 5),
        cid=st.integers(0, 2),
        nbytes=st.integers(0, 4096),
    ),
)


def sample_trace():
    return [
        TraceEvent(POST, 1, 10),
        TraceEvent(POST, 1, 11),
        TraceEvent(ARRIVAL, 1, 11),  # matches second post (depth 2)
        TraceEvent(ARRIVAL, 2, 99),  # unexpected
        TraceEvent(POST, 2, 99),  # drains the UMQ
        TraceEvent(ARRIVAL, 1, 10),
    ]


class TestEvents:
    def test_kinds_validated(self):
        with pytest.raises(ConfigurationError):
            TraceEvent("send", 0, 0)

    def test_arrival_needs_concrete_envelope(self):
        with pytest.raises(ConfigurationError):
            TraceEvent(ARRIVAL, ANY_SOURCE, 0)

    def test_post_may_wildcard(self):
        ev = TraceEvent(POST, ANY_SOURCE, ANY_TAG)
        assert ev.is_post

    def test_dict_roundtrip(self):
        ev = TraceEvent(ARRIVAL, 3, 7, cid=2, nbytes=64, time_ns=1.5)
        assert TraceEvent.from_dict(ev.as_dict()) == ev


class TestSerialization:
    def test_string_roundtrip(self):
        events = sample_trace()
        assert loads(dumps(events)) == events

    def test_file_roundtrip(self, tmp_path):
        events = sample_trace()
        path = tmp_path / "run.trace"
        write_trace(path, events)
        assert read_trace(path) == events

    def test_header_checked(self):
        with pytest.raises(ConfigurationError):
            loads('{"format": "something-else"}\n')

    def test_version_checked(self):
        with pytest.raises(ConfigurationError):
            loads('{"format": "repro-match-trace", "version": 99}\n')

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            loads("")

    @given(st.lists(_event_st, max_size=40))
    @settings(max_examples=40)
    def test_roundtrip_property(self, events):
        assert loads(dumps(events)) == events


class TestRecorder:
    def test_recording_process_captures_operations(self):
        rec = TraceRecorder()
        rng = np.random.default_rng(0)
        proc = RecordingProcess(
            0,
            make_queue("baseline", rng=rng),
            make_queue("baseline", entry_bytes=16, rng=rng, arena_base=0x2000_0000),
            recorder=rec,
        )
        proc.post_recv(src=1, tag=5)
        proc.handle_arrival(Message(Envelope(1, 5, 0), 64))
        assert [ev.kind for ev in rec.events] == [POST, ARRIVAL]
        assert rec.events[1].nbytes == 64

    def test_semantics_unchanged_by_recording(self):
        rng = np.random.default_rng(0)
        proc = RecordingProcess(
            0,
            make_queue("baseline", rng=rng),
            make_queue("baseline", entry_bytes=16, rng=rng, arena_base=0x2000_0000),
        )
        req = proc.post_recv(src=1, tag=5)
        proc.handle_arrival(Message(Envelope(1, 5, 0), 0))
        assert req.completed

    def test_clear(self):
        rec = TraceRecorder()
        rec.record_post(1, 2, 0, 0)
        rec.clear()
        assert len(rec) == 0


class TestReplay:
    def test_replay_counts(self):
        result = replay(sample_trace())
        assert result.events == 6
        assert result.matches == 3
        assert result.unexpected == 1
        assert result.max_prq_len == 2
        assert result.max_umq_len == 1

    def test_replay_depths(self):
        result = replay(sample_trace())
        # PRQ matches at depths 2 (tag 11) and 1 (tag 10): mean 1.5.
        assert result.mean_prq_search_depth == pytest.approx(1.5)

    def test_replay_agrees_across_families(self):
        events = sample_trace()
        ref = replay(events, queue_family="baseline")
        for family in ("lla-4", "openmpi", "hashmap", "ch4", "adaptive"):
            out = replay(events, queue_family=family)
            assert (out.matches, out.unexpected) == (ref.matches, ref.unexpected), family

    def test_cycle_accounted_replay(self):
        events = []
        for i in range(256):
            events.append(TraceEvent(POST, 0, 1000 + i))
        events.append(TraceEvent(POST, 1, 7))
        events.append(TraceEvent(ARRIVAL, 1, 7))
        base = replay(events, queue_family="baseline", arch=SANDY_BRIDGE, flush_every=256)
        lla = replay(events, queue_family="lla-8", arch=SANDY_BRIDGE, flush_every=256)
        assert base.match_cycles > lla.match_cycles > 0
        assert base.match_seconds > 0

    def test_heated_replay_requires_arch(self):
        with pytest.raises(ValueError):
            replay(sample_trace(), heated=True)

    def test_heated_replay_runs(self):
        events = sample_trace()
        result = replay(events, arch=SANDY_BRIDGE, heated=True, flush_every=2)
        assert result.matches == 3

    def test_record_then_replay_is_consistent(self):
        """Round trip: record a run, replay it, observe the same matching."""
        rec = TraceRecorder()
        rng = np.random.default_rng(0)
        proc = RecordingProcess(
            0,
            make_queue("baseline", rng=rng),
            make_queue("baseline", entry_bytes=16, rng=rng, arena_base=0x2000_0000),
            recorder=rec,
        )
        order = [3, 1, 4, 1, 5, 9, 2, 6]
        for i, tag in enumerate(order):
            proc.post_recv(src=0, tag=tag * 100 + i)
        for i, tag in reversed(list(enumerate(order))):
            proc.handle_arrival(Message(Envelope(0, tag * 100 + i, 0), 8))
        result = replay(rec.events)
        assert result.matches == len(order)
        assert result.mean_prq_search_depth == pytest.approx(proc.mean_prq_search_depth)
