"""Tests for the open-loop traffic subsystem.

Covers the workload generators (Poisson gaps, Zipf popularity, lazy
schedules), finite-queue admission (drop-tail and drop-head), config
validation, and the open-loop driver's end-to-end behavior: determinism,
overload producing nonzero rejection with bounded tail latency, and
capacity actually bounding queue depth.
"""

import itertools

import numpy as np
import pytest

from repro.arch import SANDY_BRIDGE
from repro.errors import ConfigurationError
from repro.matching import BoundedQueue, make_pattern, make_queue
from repro.traffic import (
    PoissonArrivals,
    TrafficConfig,
    ZipfTagPopularity,
    open_loop_events,
    run_traffic,
)


def traffic_config(**overrides):
    """A small, fast open-loop config; overrides per test."""
    kwargs = dict(
        arch=SANDY_BRIDGE,
        arrival_rate=0.4,
        zipf_alpha=1.0,
        n_tags=16,
        msg_bytes=512,
        n_warmup=50,
        n_measured=200,
        seed=3,
    )
    kwargs.update(overrides)
    return TrafficConfig(**kwargs)


class TestPoissonArrivals:
    def test_mean_gap_converges(self):
        gaps = PoissonArrivals(1000.0, np.random.default_rng(0))
        sample = list(itertools.islice(iter(gaps), 20_000))
        assert np.mean(sample) == pytest.approx(1000.0, rel=0.05)

    def test_deterministic_for_fixed_rng(self):
        a = itertools.islice(iter(PoissonArrivals(10.0, np.random.default_rng(7))), 100)
        b = itertools.islice(iter(PoissonArrivals(10.0, np.random.default_rng(7))), 100)
        assert list(a) == list(b)

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0, np.random.default_rng(0))


class TestZipfTagPopularity:
    def test_skew_orders_popularity(self):
        pop = ZipfTagPopularity(8, 1.2, np.random.default_rng(0))
        draws = list(itertools.islice(iter(pop), 20_000))
        counts = np.bincount(draws, minlength=8)
        assert counts[0] > counts[3] > counts[7]

    def test_alpha_zero_is_uniform(self):
        pop = ZipfTagPopularity(4, 0.0, np.random.default_rng(0))
        assert pop.pmf() == pytest.approx([0.25] * 4)
        draws = list(itertools.islice(iter(pop), 20_000))
        counts = np.bincount(draws, minlength=4)
        assert counts.min() > 0.9 * counts.max()

    def test_pmf_matches_power_law(self):
        pop = ZipfTagPopularity(3, 1.0, np.random.default_rng(0))
        h = 1.0 + 0.5 + 1.0 / 3.0
        assert pop.pmf() == pytest.approx([1.0 / h, 0.5 / h, (1.0 / 3.0) / h])

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfTagPopularity(0, 1.0, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            ZipfTagPopularity(4, -0.5, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            ZipfTagPopularity(4, float("nan"), np.random.default_rng(0))


class TestOpenLoopEvents:
    def kwargs(self, **overrides):
        kw = dict(
            rate_per_us=0.5,
            ghz=2.6,
            zipf_alpha=1.0,
            n_tags=8,
            nranks=64,
            msg_bytes=256,
            n_warmup=10,
            n_measured=30,
            seed=5,
        )
        kw.update(overrides)
        return kw

    def test_schedule_shape(self):
        events = list(open_loop_events(**self.kwargs()))
        assert len(events) == 40
        assert [e.index for e in events] == list(range(40))
        assert all(not e.measured for e in events[:10])
        assert all(e.measured for e in events[10:])
        times = [e.t_arrive for e in events]
        assert times == sorted(times) and times[0] > 0

    def test_deterministic_for_seed(self):
        a = list(open_loop_events(**self.kwargs()))
        b = list(open_loop_events(**self.kwargs()))
        assert a == b
        c = list(open_loop_events(**self.kwargs(seed=6)))
        assert a != c

    def test_million_event_schedule_is_lazy(self):
        # The generator must hand out events without materializing the
        # schedule: taking the first handful of a 1M-event stream is O(chunk).
        stream = open_loop_events(**self.kwargs(n_warmup=0, n_measured=1_000_000))
        head = list(itertools.islice(stream, 5))
        assert len(head) == 5 and head[-1].index == 4

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            next(open_loop_events(**self.kwargs(rate_per_us=0.0)))
        with pytest.raises(ConfigurationError):
            next(open_loop_events(**self.kwargs(n_measured=0)))


def bounded(capacity, policy="drop-tail", **kw):
    inner = make_queue("baseline", rng=np.random.default_rng(0))
    return BoundedQueue(inner, capacity, policy=policy, **kw)


class TestBoundedQueue:
    def test_drop_tail_rejects_at_capacity(self):
        q = bounded(2)
        assert q.try_post(make_pattern(1, 0, 0, seq=0))
        assert q.try_post(make_pattern(1, 1, 0, seq=1))
        assert not q.try_post(make_pattern(1, 2, 0, seq=2))
        assert len(q) == 2
        assert [it.tag for it in q.iter_items()] == [0, 1]
        st = q.admission
        assert (st.offered, st.accepted, st.rejected, st.evicted) == (3, 2, 1, 0)
        assert st.rejection_pct == pytest.approx(100.0 / 3.0)

    def test_drop_head_evicts_oldest(self):
        evicted = []
        q = bounded(2, policy="drop-head", on_evict=evicted.append)
        for seq in range(3):
            assert q.try_post(make_pattern(1, seq, 0, seq=seq))
        assert [it.tag for it in q.iter_items()] == [1, 2]
        assert [it.tag for it in evicted] == [0]
        st = q.admission
        assert (st.offered, st.accepted, st.rejected, st.evicted) == (3, 3, 0, 1)

    def test_capacity_zero_rejects_everything(self):
        for policy in ("drop-tail", "drop-head"):
            q = bounded(0, policy=policy)
            assert not q.try_post(make_pattern(1, 0, 0, seq=0))
            assert len(q) == 0 and q.admission.rejected == 1

    def test_huge_capacity_is_transparent(self):
        q = bounded(1 << 30)
        plain = make_queue("baseline", rng=np.random.default_rng(0))
        for seq in range(20):
            q.post(make_pattern(seq % 3, seq, 0, seq=seq))
            plain.post(make_pattern(seq % 3, seq, 0, seq=seq))
        assert [it.seq for it in q.iter_items()] == [
            it.seq for it in plain.iter_items()
        ]
        assert q.admission.rejected == 0 and q.admission.evicted == 0

    def test_match_remove_forwards(self):
        q = bounded(4)
        q.post(make_pattern(1, 2, 0, seq=0))
        from repro.matching import Envelope, MatchItem

        found = q.match_remove(MatchItem.from_envelope(Envelope(1, 2, 0), seq=9))
        assert found is not None and found.seq == 0 and len(q) == 0

    def test_reject_charges_port(self):
        class Port:
            cycles = 0.0

            def charge(self, c):
                self.cycles += c

        port = Port()
        q = bounded(0, reject_cycles=50.0, port=port)
        q.post(make_pattern(1, 0, 0, seq=0))
        assert port.cycles == 50.0

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            bounded(-1)
        with pytest.raises(ConfigurationError):
            bounded(4, policy="drop-random")

    def test_factory_capacity_none_returns_unwrapped(self):
        q = make_queue("baseline", rng=np.random.default_rng(0), capacity=None)
        assert not isinstance(q, BoundedQueue)
        wrapped = make_queue("baseline", rng=np.random.default_rng(0), capacity=8)
        assert isinstance(wrapped, BoundedQueue) and wrapped.capacity == 8


class TestTrafficConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"arrival_rate": 0.0},
            {"arrival_rate": -1.0},
            {"zipf_alpha": -0.1},
            {"n_tags": 0},
            {"n_measured": 0},
            {"n_warmup": -1},
            {"queue_capacity": -1},
            {"admission": "random"},
            {"recv_window": 0},
            {"search_depth": -1},
            {"flush_every": -1},
        ],
    )
    def test_out_of_range_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            traffic_config(**overrides).validate()

    def test_variant_labels(self):
        assert traffic_config().variant_label() == "baseline"
        assert traffic_config(heated=True).variant_label() == "HC"
        assert traffic_config(queue_family="lla-8").variant_label() == "lla-8"
        assert (
            traffic_config(queue_family="lla-8", heated=True).variant_label()
            == "HC+lla-8"
        )


class TestOpenLoopDriver:
    def test_deterministic_for_fixed_seed(self):
        cfg = traffic_config(queue_capacity=64, search_depth=16)
        assert repr(run_traffic(cfg)) == repr(run_traffic(cfg))

    def test_seed_changes_result(self):
        a = run_traffic(traffic_config(seed=1))
        b = run_traffic(traffic_config(seed=2))
        assert repr(a) != repr(b)

    def test_underload_rejects_nothing(self):
        res = run_traffic(traffic_config(arrival_rate=0.05, queue_capacity=64))
        assert res.measured.rejection_pct == 0.0
        assert res.measured.rejected == 0 and res.measured.evicted == 0
        assert res.measured.p99_sojourn_us > 0  # deliveries did happen
        assert res.measured.delivered > 0

    def test_overload_rejects_with_bounded_tail(self):
        # Moderate overload: the engine falls behind, the finite queue fills,
        # drop-tail sheds load — rejection is nonzero while p99 stays finite
        # and positive (the loss system bounds latency by shedding).
        res = run_traffic(
            traffic_config(arrival_rate=1.6, queue_capacity=64, search_depth=32)
        )
        assert res.measured.rejection_pct > 0
        assert res.measured.rejected > 0
        assert res.measured.p99_sojourn_us > 0
        assert res.measured.p99_sojourn_us >= res.measured.p50_sojourn_us

    def test_capacity_bounds_depth(self):
        res = run_traffic(
            traffic_config(arrival_rate=1.6, queue_capacity=32, search_depth=32)
        )
        assert res.measured.max_queue_depth <= 32
        assert res.warmup.max_queue_depth <= 32

    def test_unbounded_overload_grows_instead(self):
        res = run_traffic(
            traffic_config(arrival_rate=1.6, queue_capacity=None, search_depth=32)
        )
        assert res.measured.rejected == 0 and res.measured.evicted == 0
        assert res.measured.max_queue_depth > 32
        assert res.measured.leftover > 0  # backlog never drained

    def test_drop_head_evicts_under_overload(self):
        res = run_traffic(
            traffic_config(
                arrival_rate=1.6,
                queue_capacity=64,
                search_depth=32,
                admission="drop-head",
            )
        )
        assert res.measured.evicted > 0
        assert res.measured.rejected == 0  # drop-head always admits
        assert res.measured.rejection_pct > 0  # evictions count as loss

    def test_heated_variant_runs_heater(self):
        res = run_traffic(
            traffic_config(heated=True, flush_every=25, search_depth=32)
        )
        assert res.heater_passes > 0
        assert res.config_label == "HC"

    def test_event_conservation(self):
        # Every measured arrival ends exactly one way: fast-matched,
        # drained later, rejected, evicted, or left in the queue.
        res = run_traffic(
            traffic_config(arrival_rate=1.2, queue_capacity=64, search_depth=16)
        )
        for phase in (res.warmup, res.measured):
            assert (
                phase.fast_matches
                + phase.drained
                + phase.rejected
                + phase.evicted
                + phase.leftover
                == phase.events
            )

    def test_stats_dict_round_trip(self):
        res = run_traffic(traffic_config())
        d = res.measured.as_dict()
        assert d["events"] == float(res.measured.events)
        assert d["p99_sojourn_us"] == res.measured.p99_sojourn_us
        assert all(isinstance(v, float) for v in d.values())
        assert res.measured.metric("p99_sojourn_us") == res.measured.p99_sojourn_us
        with pytest.raises(ConfigurationError):
            res.measured.metric("not_a_metric")

    def test_delivered_is_a_first_class_metric(self):
        # ``delivered`` (fast matches + later drains) is selectable as a
        # scenario y value and rides along in exported extras.
        from repro.traffic.stats import TRAFFIC_METRICS

        assert "delivered" in TRAFFIC_METRICS
        res = run_traffic(traffic_config())
        m = res.measured
        assert m.delivered == m.fast_matches + m.drained
        assert m.metric("delivered") == float(m.delivered)
        assert m.as_dict()["delivered"] == float(m.delivered)
