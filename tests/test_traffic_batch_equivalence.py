"""Open-loop lockstep equivalence: the columnar batch loop vs the legacy loop.

``TrafficDriver.run_open`` now dispatches between the retained per-event
legacy loop and the columnar fast path (EventBlock slabs + verified
reject-streak replay). The refactor is only safe if the two are
*repr-identical* — same phase statistics, same sojourn reservoirs, same
per-level memory attribution — across queue families, memory kernels, scan
modes, admission policies, and heated/flushed regimes. This suite pins
that, plus the columnar schedule's block/view consistency and the
satellite fixes to the driver's ``waiting`` bookkeeping.
"""

from types import SimpleNamespace

import pytest

from repro.arch import SANDY_BRIDGE
from repro.errors import MatchingError
from repro.traffic import TrafficConfig, TrafficDriver, run_traffic
from repro.traffic.workload import open_loop_blocks, open_loop_events

KERNELS = ("soa", "vec", "reference")
SCAN_MODES = ("on", "off")

#: The regimes the open-loop driver distinguishes. The saturated drop-tail
#: point exercises the reject-streak replayer; the others pin the per-event
#: fallback paths (drop-head eviction, unbounded admission, heater sync,
#: flush boundaries, capacity-zero universal rejection, a torn
#: warmup/measured boundary landing mid-EventBlock).
REGIMES = {
    "saturated-drop-tail": dict(
        arrival_rate=4.0, queue_capacity=32, recv_window=8,
        search_depth=32, n_warmup=30, n_measured=120,
    ),
    "drop-tail-flush": dict(
        arrival_rate=4.0, queue_capacity=32, recv_window=8,
        search_depth=16, flush_every=16, n_warmup=30, n_measured=120,
    ),
    "drop-head": dict(
        arrival_rate=4.0, queue_capacity=16, admission="drop-head",
        recv_window=8, search_depth=16, n_warmup=30, n_measured=120,
    ),
    "unbounded": dict(
        arrival_rate=0.4, recv_window=16, n_warmup=50, n_measured=200,
    ),
    "heated-flush": dict(
        arrival_rate=1.0, queue_capacity=32, recv_window=8, heated=True,
        flush_every=16, search_depth=8, n_warmup=30, n_measured=120,
    ),
    "capacity-zero": dict(
        arrival_rate=2.0, queue_capacity=0, recv_window=4,
        search_depth=8, n_warmup=20, n_measured=100,
    ),
    "torn-boundary": dict(
        arrival_rate=4.0, queue_capacity=32, recv_window=8,
        search_depth=16, n_warmup=1100, n_measured=200,
    ),
}


def cfg(traffic_batch, **kw):
    defaults = dict(
        arch=SANDY_BRIDGE,
        zipf_alpha=1.0,
        n_tags=16,
        msg_bytes=512,
        seed=7,
    )
    defaults.update(kw)
    return TrafficConfig(traffic_batch=traffic_batch, **defaults)


def run_repr(traffic_batch, **kw):
    result = run_traffic(cfg(traffic_batch, **kw))
    return repr(result) + " | " + repr(result.mem_stats)


class TestLockstepEquivalence:
    @pytest.mark.parametrize("regime", sorted(REGIMES), ids=str)
    def test_regime_identical(self, regime):
        kw = REGIMES[regime]
        assert run_repr(True, **kw) == run_repr(False, **kw)

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("scan", SCAN_MODES)
    def test_kernel_scan_matrix_identical(self, monkeypatch, kernel, scan):
        monkeypatch.setenv("REPRO_MEM_KERNEL", kernel)
        monkeypatch.setenv("REPRO_SCAN_BATCH", scan)
        kw = REGIMES["saturated-drop-tail"]
        assert run_repr(True, **kw) == run_repr(False, **kw)

    @pytest.mark.parametrize("family", ("baseline", "lla-8", "hash-64", "openmpi"))
    def test_queue_families_identical(self, family):
        kw = dict(REGIMES["saturated-drop-tail"], queue_family=family)
        assert run_repr(True, **kw) == run_repr(False, **kw)

    def test_fragmented_identical(self):
        kw = dict(REGIMES["saturated-drop-tail"], fragmented=True)
        assert run_repr(True, **kw) == run_repr(False, **kw)

    def test_reject_cycles_identical(self):
        # A fractional NACK charge lands on the clock per replayed reject.
        kw = dict(REGIMES["saturated-drop-tail"], reject_cycles=17.5)
        assert run_repr(True, **kw) == run_repr(False, **kw)

    def test_run_to_run_batch_deterministic(self):
        kw = REGIMES["saturated-drop-tail"]
        assert run_repr(True, **kw) == run_repr(True, **kw)

    def test_env_resolution_matches_config_field(self, monkeypatch):
        kw = REGIMES["capacity-zero"]
        monkeypatch.setenv("REPRO_TRAFFIC_BATCH", "off")
        via_env = run_repr(None, **kw)
        monkeypatch.delenv("REPRO_TRAFFIC_BATCH")
        assert via_env == run_repr(False, **kw)


class TestBlockViewConsistency:
    """The per-event iterator is a thin view over the columnar blocks."""

    SCHEDULE = dict(
        rate_per_us=2.0, ghz=2.6, zipf_alpha=1.0, n_tags=16, nranks=64,
        msg_bytes=512, n_warmup=1100, n_measured=300, seed=13,
    )

    def test_events_match_blocks(self):
        events = list(open_loop_events(**self.SCHEDULE))
        flat = []
        for block in open_loop_blocks(**self.SCHEDULE):
            measured = block.measured
            for i in range(len(block)):
                flat.append(
                    (
                        block.index0 + i,
                        float(block.t_arrive[i]),
                        int(block.rank[i]),
                        int(block.tag[i]),
                        block.nbytes,
                        bool(measured[i]),
                    )
                )
        assert len(events) == len(flat) == 1400
        for ev, row in zip(events, flat):
            assert (ev.index, ev.t_arrive, ev.rank, ev.tag, ev.nbytes, ev.measured) == row

    def test_torn_boundary_lands_mid_block(self):
        # n_warmup=1100 with the default 1024-event chunk: the second block
        # holds both the last warmup and the first measured event.
        blocks = list(open_loop_blocks(**self.SCHEDULE))
        assert blocks[0].warm_count == len(blocks[0])
        assert 0 < blocks[1].warm_count < len(blocks[1])

    def test_arrival_times_strictly_increase_across_blocks(self):
        last = 0.0
        for block in open_loop_blocks(**self.SCHEDULE):
            for t in block.t_arrive:
                assert t > last
                last = float(t)


class TestWaitingBookkeeping:
    """Satellite: emptied FIFOs are cleaned up; desynced evicts raise."""

    @pytest.mark.parametrize("traffic_batch", (False, True), ids=("legacy", "batch"))
    def test_desynced_evict_raises(self, traffic_batch):
        driver = TrafficDriver.open_loop(
            cfg(
                traffic_batch,
                arrival_rate=4.0,
                queue_capacity=16,
                admission="drop-head",
                recv_window=8,
                search_depth=8,
                n_warmup=20,
                n_measured=80,
            )
        )
        driver.run_open()
        # The driver's waiting table and the UMQ agreed all run; an evict
        # for a tag the driver has no record of is a bookkeeping desync.
        with pytest.raises(MatchingError):
            driver.session.umq.on_evict(SimpleNamespace(tag=999))

    def test_legacy_waiting_table_drained_clean(self):
        # With cleanup, fully drained tags leave no empty deques behind:
        # leftovers is exactly the number of entries still waiting, and a
        # run whose unexpected messages all drained reports zero.
        result = run_traffic(
            cfg(
                False,
                arrival_rate=0.2,
                recv_window=16,
                n_warmup=50,
                n_measured=400,
            )
        )
        total = result.warmup
        assert total.unexpected >= 0
        leftover = result.warmup.leftover + result.measured.leftover
        drained = result.warmup.drained + result.measured.drained
        unexpected = result.warmup.unexpected + result.measured.unexpected
        evicted = result.warmup.evicted + result.measured.evicted
        assert leftover == unexpected - drained - evicted
