"""Closed-loop equivalence: the traffic driver vs the retained legacy loop.

``osu_bandwidth`` now routes its fixed-grid iteration through
``TrafficDriver.run_closed``; ``osu_bandwidth_legacy`` keeps the original
bespoke loop verbatim. The refactor is only safe if the two are
*repr-identical* — same match-cycle samples, same bandwidth math, same
per-level memory attribution — across queue families, heater variants,
memory kernels, and scan modes. This suite pins that, point-by-point and
through the Runner-driven fig4/fig6 panels the paper reproduction rests on.
"""

import pytest

from repro.arch import SANDY_BRIDGE
from repro.bench.figures import plan_spatial_search_length, plan_temporal_msg_size
from repro.bench.osu import OsuConfig, osu_bandwidth, osu_bandwidth_legacy
from repro.exp import Runner
from repro.net import QLOGIC_QDR

KERNELS = ("soa", "vec", "reference")
SCAN_MODES = ("on", "off")

VARIANTS = [
    dict(queue_family="baseline", heated=False),
    dict(queue_family="baseline", heated=True),
    dict(queue_family="lla-8", heated=False),
    dict(queue_family="lla-8", heated=True),
]


def cfg(**kw):
    defaults = dict(
        arch=SANDY_BRIDGE,
        link=QLOGIC_QDR,
        queue_family="baseline",
        msg_bytes=256,
        search_depth=64,
        iterations=4,
        warmup=2,
        seed=11,
    )
    defaults.update(kw)
    return OsuConfig(**defaults)


class TestPointEquivalence:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: (
        ("HC+" if v["heated"] else "") + v["queue_family"]
    ))
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("scan", SCAN_MODES)
    def test_bandwidth_point_identical(self, monkeypatch, variant, kernel, scan):
        monkeypatch.setenv("REPRO_MEM_KERNEL", kernel)
        monkeypatch.setenv("REPRO_SCAN_BATCH", scan)
        new = osu_bandwidth(cfg(**variant))
        old = osu_bandwidth_legacy(cfg(**variant))
        assert repr(new) == repr(old)
        assert repr(new.mem_stats) == repr(old.mem_stats)

    def test_fragmented_layout_identical(self):
        new = osu_bandwidth(cfg(fragmented=True, queue_family="lla-8"))
        old = osu_bandwidth_legacy(cfg(fragmented=True, queue_family="lla-8"))
        assert repr(new) == repr(old)


class TestPanelEquivalence:
    """Fig 4 / fig 6 quick panels, legacy vs refactored producer."""

    def run_panel(self, plan):
        return repr(Runner().run_sweep(plan))

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fig4_panel_identical(self, monkeypatch, kernel):
        monkeypatch.setenv("REPRO_MEM_KERNEL", kernel)

        def plan():
            return plan_spatial_search_length(
                SANDY_BRIDGE, msg_bytes=16, depths=(1, 32, 256), iterations=3, seed=0
            )

        refactored = self.run_panel(plan())
        monkeypatch.setattr("repro.bench.osu.osu_bandwidth", osu_bandwidth_legacy)
        legacy = self.run_panel(plan())
        assert refactored == legacy

    @pytest.mark.parametrize("scan", SCAN_MODES)
    def test_fig6_panel_identical(self, monkeypatch, scan):
        monkeypatch.setenv("REPRO_SCAN_BATCH", scan)

        def plan():
            return plan_temporal_msg_size(
                SANDY_BRIDGE, depth=128, msg_sizes=(16, 1024), iterations=3, seed=0
            )

        refactored = self.run_panel(plan())
        monkeypatch.setattr("repro.bench.osu.osu_bandwidth", osu_bandwidth_legacy)
        legacy = self.run_panel(plan())
        assert refactored == legacy
