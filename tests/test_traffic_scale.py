"""Million-event scale: the columnar fast path in bounded time and memory.

The open-loop schedule is lazy and the batch driver's resident state is
O(reservoir + n_tags + recv_window) — nothing scales with the number of
events. This suite drives a full million-event overload schedule through
the fast path (seconds, thanks to reject-streak replay), pins the peak
traced allocation flat as the event count grows 4x, and re-checks
lockstep equivalence with the legacy loop at a downscaled-but-still-large
schedule, including a warmup/measured boundary torn mid-EventBlock.
"""

import tracemalloc

from repro.arch import SANDY_BRIDGE
from repro.traffic import TrafficConfig, TrafficDriver, run_traffic

#: A deeply saturated drop-tail point: arrivals outpace the engine ~30:1,
#: so almost every event is a pure reject and the replayer carries the
#: schedule in long verified streaks.
OVERLOAD = dict(
    arch=SANDY_BRIDGE,
    arrival_rate=32.0,
    queue_capacity=32,
    recv_window=4,
    search_depth=8,
    zipf_alpha=1.0,
    n_tags=16,
    msg_bytes=512,
    seed=7,
)


def scale_config(traffic_batch, **kw):
    return TrafficConfig(traffic_batch=traffic_batch, **dict(OVERLOAD, **kw))


def test_million_events_complete_exactly():
    result = run_traffic(scale_config(True, n_warmup=1000, n_measured=999_000))
    assert result.warmup.events == 1_000
    assert result.measured.events == 999_000
    # Every arrival is classified exactly once; depth was sampled per event.
    for phase in (result.warmup, result.measured):
        assert phase.fast_matches + phase.unexpected + phase.rejected == phase.events
    # Overload means rejection dominates but the engine still delivers.
    assert result.measured.rejected > 900_000
    assert result.measured.delivered > 0


def test_peak_memory_flat_in_event_count():
    # The driver's resident state must not scale with the schedule: trace a
    # run, then one with 4x the events, and require the same peak (small
    # slack for allocator noise). The session (hierarchy arrays) is built
    # before tracing starts — the bound is on *driver* state.
    def peak_for(n_measured):
        driver = TrafficDriver.open_loop(
            scale_config(True, n_warmup=1000, n_measured=n_measured)
        )
        tracemalloc.start()
        try:
            driver.run_open()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    small = peak_for(31_000)
    large = peak_for(127_000)
    assert large < 8 * 2**20, f"peak {large / 2**20:.2f} MB exceeds 8 MB bound"
    assert large <= small * 1.5 + 256 * 1024, (
        f"peak grew with event count: {small} -> {large} bytes for 4x events"
    )


def test_downscaled_legacy_repr_match():
    # The legacy loop is too slow for a million events; at 20k the same
    # overload point must still be repr-identical, mem_stats included.
    kw = dict(n_warmup=1000, n_measured=19_000)
    batch = run_traffic(scale_config(True, **kw))
    legacy = run_traffic(scale_config(False, **kw))
    assert repr(batch) == repr(legacy)
    assert repr(batch.mem_stats) == repr(legacy.mem_stats)


def test_torn_boundary_mid_block_at_scale():
    # n_warmup=1500 with the 1024-event chunk puts the warmup/measured
    # boundary in the middle of the second EventBlock; the batch loop must
    # flush its local counters and reset level_stats at exactly that event.
    kw = dict(n_warmup=1500, n_measured=4500)
    batch = run_traffic(scale_config(True, **kw))
    legacy = run_traffic(scale_config(False, **kw))
    assert batch.warmup.events == 1500
    assert batch.measured.events == 4500
    assert repr(batch) == repr(legacy)
    assert repr(batch.mem_stats) == repr(legacy.mem_stats)
