"""Tests for the reproduction-validation machinery.

The full `run_validation` sweep is exercised by the CLI/benchmarks; here we
test the report mechanics plus a couple of cheap sections end to end.
"""

from repro.validation import Criterion, ValidationReport, run_validation


class TestReport:
    def test_all_pass(self):
        report = ValidationReport()
        report.check("X", "claim", 1.0, "1..2", True)
        assert report.passed
        assert report.failures == []

    def test_failure_detected(self):
        report = ValidationReport()
        report.check("X", "good", 1.0, "1..2", True)
        report.check("X", "bad", 9.0, "1..2", False)
        assert not report.passed
        assert len(report.failures) == 1
        assert report.failures[0].claim == "bad"

    def test_render_contains_verdict(self):
        report = ValidationReport()
        report.check("X", "claim", "v", "e", True)
        assert "ALL CRITERIA PASS" in report.render()
        report.check("X", "claim2", "v", "e", False)
        assert "1 CRITERIA FAILED" in report.render()

    def test_criterion_fields(self):
        c = Criterion("exp", "claim", "obs", "exp-band", True)
        assert c.passed


class TestSections:
    def test_table1_section(self):
        report = run_validation(quick=True, sections=["table1"])
        assert report.passed
        assert any("combinatorics" in c.claim for c in report.criteria)

    def test_fig1_section(self):
        report = run_validation(quick=True, sections=["fig1"])
        assert report.passed
        assert len(report.criteria) == 3

    def test_heater_micro_section(self):
        report = run_validation(quick=True, sections=["heater_micro"])
        assert report.passed

    def test_unknown_section_runs_nothing(self):
        report = run_validation(quick=True, sections=["nope"])
        assert report.criteria == []
